"""Serialize one store *and* its derived indexes to a single bundle.

This is the warm-start half of the paper's columnar pitch: the Monet
relations, the path summary, the Euler-RMQ LCA machinery and the
full-text term columns all live in dense integer/string columns, so
persisting them is one ``tobytes()`` per column and loading is one
checksum pass plus column rebinds — no XML parse, no Euler tour, no
tokenization.  Section layout (all framed by
:mod:`repro.snapshot.format`):

======================  ==================================================
``meta``                JSON: counts, root/first OID, case mode, extras
``summary/paths``       packed path strings in pid order
``store/oid_pid``       dense OID→pid column
``store/oid_parent``    dense OID→parent column (``-1`` at the root)
``store/oid_rank``      dense OID→rank column
``edges|ranks/*``       per-family: pid list, run lengths, head, tail
``strings/*``           pid list, run lengths, OID column, packed values
``lca/*``               Euler tour, depths, first/last, log, sparse table
``ft/*``                term dictionary, run lengths, pid/oid columns
``vx/*``                typed value index: pid list, run lengths, OID
                        column, packed values (only when declared)
======================  ==================================================

:func:`read_snapshot` returns a :class:`Snapshot` whose store has the
per-store generation-keyed caches **pre-seeded**
(:func:`repro.core.lca_index.seed_lca_index`,
:func:`repro.fulltext.index.seed_fulltext_index`), so a
:class:`~repro.core.engine.NearestConceptEngine` over it answers its
first query with zero index constructions.
"""

from __future__ import annotations

from array import array
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path as FsPath
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.lca_index import LcaIndex, get_lca_index, seed_lca_index
from ..datamodel.errors import StorageError
from ..fulltext.index import (
    FullTextIndex,
    get_fulltext_index,
    seed_fulltext_index,
)
from ..monet.bat import BAT
from ..monet.engine import MonetXML
from ..monet.pathsummary import ColumnarPathSummary, PathSummary
from ..valueindex import ValueIndex, get_value_index, seed_value_index
from .deltas import apply_delta_ops, read_delta_ops
from .format import SnapshotReader, SnapshotWriter

__all__ = ["Snapshot", "write_snapshot", "read_snapshot"]


@dataclass
class Snapshot:
    """One loaded bundle: the store plus its ready-made indexes.

    The store's generation-keyed caches are already seeded, so any
    engine, backend or query processor built over ``store`` starts
    warm; :meth:`engine` is the one-call convenience for that.
    """

    store: MonetXML
    lca_index: LcaIndex
    fulltext_index: FullTextIndex
    meta: Dict[str, object] = field(default_factory=dict)
    path: Optional[FsPath] = None
    #: Mutations replayed from the bundle's delta tail on load.
    delta_count: int = 0
    #: Present only for bundles written with declared value indexes.
    value_index: Optional[ValueIndex] = None

    def engine(self, **options):
        """A warm :class:`~repro.core.engine.NearestConceptEngine`."""
        from ..core.engine import NearestConceptEngine

        return NearestConceptEngine.from_snapshot(self, **options)


# ---------------------------------------------------------------------------
# Writing.
# ---------------------------------------------------------------------------

def _add_relation_family(
    writer: SnapshotWriter, name: str, relations: Dict[int, BAT]
) -> None:
    """Serialize one int×int relation family as four flat columns."""
    pids: List[int] = []
    lengths: List[int] = []
    heads: List[int] = []
    tails: List[int] = []
    for pid in sorted(relations):
        relation = relations[pid]
        pids.append(pid)
        lengths.append(len(relation))
        heads.extend(relation.heads)
        tails.extend(relation.tails)
    writer.add_array(f"{name}/pids", pids)
    writer.add_array(f"{name}/lens", lengths)
    writer.add_array(f"{name}/heads", heads)
    writer.add_array(f"{name}/tails", tails)


def write_snapshot(
    store: MonetXML,
    path: Union[str, FsPath],
    *,
    case_sensitive: bool = False,
    value_indexes: Optional[Sequence[str]] = None,
    extra_meta: Optional[Dict[str, object]] = None,
    _writer_byteorder: Optional[int] = None,
) -> int:
    """Write the bundle for ``store`` to ``path``; returns byte count.

    The LCA and full-text indexes are obtained through their
    generation-keyed caches (building them here if the store is cold),
    so snapshotting a warm server costs only serialization.
    ``case_sensitive`` selects which full-text variant is bundled.
    A non-empty ``value_indexes`` declaration list additionally bundles
    the typed value index as ``vx/*`` sections; readers that predate
    those sections ignore them and fall back to scans.
    """
    if getattr(store, "dead_count", 0):
        raise StorageError(
            "store has tombstoned nodes; compact_store() it before writing "
            "a snapshot (bundles are dense pre-order)"
        )
    summary = store.summary
    lca = get_lca_index(store)
    fulltext = get_fulltext_index(store, case_sensitive)

    writer = (
        SnapshotWriter()
        if _writer_byteorder is None
        else SnapshotWriter(_byteorder=_writer_byteorder)
    )
    arrays = lca.to_arrays()
    table_rows: Sequence[Sequence[int]] = arrays["table_rows"]  # type: ignore[assignment]

    terms: List[str] = []
    term_lengths: List[int] = []
    term_pids: List[int] = []
    term_oids: List[int] = []
    for term, pids, oids in fulltext.iter_term_columns():
        terms.append(term)
        term_lengths.append(len(oids))
        term_pids.extend(pids)
        term_oids.extend(oids)

    meta: Dict[str, object] = {
        "node_count": store.node_count,
        "root_oid": store.root_oid,
        "first_oid": store.first_oid,
        "path_count": len(summary) - 1,
        "tour_length": lca.tour_length,
        "table_row_count": len(table_rows),
        "case_sensitive": case_sensitive,
        "indexed_associations": fulltext.indexed_associations,
        "vocabulary_size": fulltext.vocabulary_size,
    }
    value_index: Optional[ValueIndex] = None
    if value_indexes:
        # The cache may hand back an index built under other (or no)
        # declarations — coverage is identical, so only the recorded
        # declaration list must come from this call's arguments.
        value_index = get_value_index(store, declared=tuple(value_indexes))
        meta["value_indexes"] = sorted(set(value_indexes))
        meta["value_index_entries"] = value_index.entry_count
    documents = getattr(store, "documents", None)
    if documents:
        # Persist the live-write registry so a reloaded collection can
        # keep accepting put/delete under the same document names.
        meta["documents"] = {
            name: [low, high] for name, (low, high) in sorted(documents.items())
        }
    if extra_meta:
        meta.update(extra_meta)
    writer.add_json("meta", meta)

    # Columnar path summary: parent pid, step kind and label per pid.
    # (Not path strings — re-parsing them costs O(total path depth)
    # with per-prefix interning, which dominates load on path-heavy
    # stores; one parent-pointer step per path is O(paths).)
    writer.add_array(
        "summary/parents", (summary.parent(pid) for pid in summary.pids())
    )
    writer.add_array(
        "summary/kinds",
        (1 if summary.is_attribute(pid) else 0 for pid in summary.pids()),
    )
    writer.add_strings(
        "summary/labels", (summary.label(pid) for pid in summary.pids())
    )

    root_index = store.root_oid - store.first_oid
    parents = [
        -1 if parent is None else parent
        for parent in (store.parent_of(oid) for oid in store.iter_oids())
    ]
    if parents[root_index] != -1:
        raise StorageError("store root has a parent; refusing to snapshot")
    writer.add_array("store/oid_pid", (store.pid_of(oid) for oid in store.iter_oids()))
    writer.add_array("store/oid_parent", parents)
    writer.add_array("store/oid_rank", (store.rank_of(oid) for oid in store.iter_oids()))

    _add_relation_family(writer, "edges", store.edges)
    _add_relation_family(writer, "ranks", store.ranks)

    string_pids: List[int] = []
    string_lengths: List[int] = []
    string_oids: List[int] = []
    string_values: List[str] = []
    for pid in sorted(store.strings):
        relation = store.strings[pid]
        string_pids.append(pid)
        string_lengths.append(len(relation))
        string_oids.extend(relation.heads)
        string_values.extend(relation.tails)
    writer.add_array("strings/pids", string_pids)
    writer.add_array("strings/lens", string_lengths)
    writer.add_array("strings/oids", string_oids)
    writer.add_strings("strings/values", string_values)

    writer.add_array("lca/tour", arrays["tour"])
    writer.add_array("lca/depth", arrays["depth"])
    writer.add_array("lca/first", arrays["first"])
    writer.add_array("lca/last", arrays["last"])
    writer.add_array("lca/log", arrays["log"])
    writer.add_array("lca/table_lens", (len(row) for row in table_rows))
    # Accumulate straight into the typed column: the sparse table is
    # O(n log n) entries, far too many to box as a Python int list.
    flat_table = array("q")
    for row in table_rows:
        flat_table.extend(row)
    writer.add_array("lca/table", flat_table)

    writer.add_strings("ft/terms", terms)
    writer.add_array("ft/lens", term_lengths)
    writer.add_array("ft/pids", term_pids)
    writer.add_array("ft/oids", term_oids)

    if value_index is not None:
        vx_pids: List[int] = []
        vx_lengths: List[int] = []
        vx_oids = array("q")
        vx_values: List[str] = []
        for pid, oids, values in value_index.iter_path_columns():
            vx_pids.append(pid)
            vx_lengths.append(len(oids))
            vx_oids.extend(oids)
            vx_values.extend(values)
        writer.add_array("vx/pids", vx_pids)
        writer.add_array("vx/lens", vx_lengths)
        writer.add_array("vx/oids", vx_oids)
        writer.add_strings("vx/values", vx_values)

    return writer.write(path)


# ---------------------------------------------------------------------------
# Reading.
# ---------------------------------------------------------------------------

def _meta_int(meta: Dict[str, object], key: str, default: int) -> int:
    """A meta field as an int, or :class:`StorageError` — never TypeError."""
    value = meta.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise StorageError(
            f"snapshot meta field {key!r} is not an integer: {value!r}"
        )
    return value


def _slice_runs(
    column: Sequence[int], lengths: Sequence[int], section: str
) -> List[Sequence[int]]:
    """Split one flat column back into runs of the recorded lengths."""
    runs: List[Sequence[int]] = []
    position = 0
    for length in lengths:
        runs.append(column[position : position + length])
        position += length
    if position != len(column):
        raise StorageError(
            f"section {section!r} length disagrees with its run lengths "
            f"({position} != {len(column)})"
        )
    return runs


class _LazyRelationFamily(Mapping):
    """pid → BAT over flat head/tail columns, materialized on access.

    A loaded store carries one relation per path — often hundreds of
    thousands of tiny BATs — but a query touches only the handful its
    hit paths name.  This mapping keeps the family as two flat columns
    plus a pid → (start, stop) index and builds (then memoizes) each
    BAT on first access, so loading costs O(relations) dict inserts
    instead of O(relations) object graphs.  Read-only by design, like
    the eager dicts it replaces.
    """

    __slots__ = ("_spans", "_heads", "_tails", "_cache")

    def __init__(
        self,
        pids: Sequence[int],
        lengths: Sequence[int],
        heads: Sequence[int],
        tails: Sequence,
        section: str,
        summary: PathSummary,
    ):
        if len(pids) != len(lengths):
            raise StorageError(
                f"section {section!r} pid/length columns disagree"
            )
        path_count = len(summary)
        spans: Dict[int, Tuple[int, int]] = {}
        position = 0
        for pid, length in zip(pids, lengths):
            if not 0 < pid < path_count:
                raise StorageError(
                    f"section {section!r} references unknown pid {pid}"
                )
            if pid in spans:
                raise StorageError(
                    f"section {section!r} repeats pid {pid}"
                )
            spans[pid] = (position, position + length)
            position += length
        if position != len(heads) or position != len(tails):
            raise StorageError(
                f"section {section!r} length disagrees with its run lengths "
                f"({position} != {len(heads)}/{len(tails)})"
            )
        self._spans = spans
        self._heads = heads
        self._tails = tails
        self._cache: Dict[int, BAT] = {}

    def __getitem__(self, pid: int) -> BAT:
        cached = self._cache.get(pid)
        if cached is not None:
            return cached
        start, stop = self._spans[pid]  # KeyError is the Mapping contract
        heads = self._heads[start:stop]
        tails = self._tails[start:stop]
        relation = BAT.from_columns(
            heads.tolist() if hasattr(heads, "tolist") else list(heads),
            tails.tolist() if hasattr(tails, "tolist") else list(tails),
            copy=False,
        )
        self._cache[pid] = relation
        return relation

    def __iter__(self):
        return iter(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def __contains__(self, pid: object) -> bool:
        return pid in self._spans


def _rebuild_summary(reader: SnapshotReader) -> PathSummary:
    # Parents must precede children — the invariant that makes a single
    # forward pass reproduce the original pid assignment.
    try:
        return ColumnarPathSummary(
            reader.array("summary/parents"),
            reader.strings("summary/labels"),
            reader.array("summary/kinds"),
        )
    except ValueError as exc:
        raise StorageError(f"corrupt path summary: {exc}") from exc


def _rebuild_relation_family(
    reader: SnapshotReader, name: str, summary: PathSummary
) -> Mapping:
    return _LazyRelationFamily(
        reader.array(f"{name}/pids"),
        reader.array(f"{name}/lens"),
        reader.array(f"{name}/heads"),
        reader.array(f"{name}/tails"),
        name,
        summary,
    )


def _rebuild_store(reader: SnapshotReader, meta: Dict[str, object]) -> MonetXML:
    summary = _rebuild_summary(reader)
    try:
        node_count = int(meta["node_count"])  # type: ignore[index]
        root_oid = int(meta["root_oid"])  # type: ignore[index]
        first_oid = int(meta["first_oid"])  # type: ignore[index]
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"snapshot meta section is incomplete: {exc}") from exc

    oid_pid = reader.tolist("store/oid_pid")
    oid_parent: List[Optional[int]] = reader.tolist("store/oid_parent")
    oid_rank = reader.tolist("store/oid_rank")
    if not (len(oid_pid) == len(oid_parent) == len(oid_rank) == node_count):
        raise StorageError(
            "store columns disagree with the recorded node count "
            f"({len(oid_pid)}/{len(oid_parent)}/{len(oid_rank)} != {node_count})"
        )
    root_index = root_oid - first_oid
    if not 0 <= root_index < node_count or oid_parent[root_index] != -1:
        raise StorageError("snapshot root OID does not denote a parentless node")
    oid_parent[root_index] = None

    edges = _rebuild_relation_family(reader, "edges", summary)
    ranks = _rebuild_relation_family(reader, "ranks", summary)
    strings = _LazyRelationFamily(
        reader.array("strings/pids"),
        reader.array("strings/lens"),
        reader.array("strings/oids"),
        reader.strings("strings/values"),
        "strings",
        summary,
    )

    return MonetXML(
        summary=summary,
        root_oid=root_oid,
        first_oid=first_oid,
        oid_pid=oid_pid,
        oid_parent=oid_parent,
        oid_rank=oid_rank,
        edges=edges,
        strings=strings,
        ranks=ranks,
    )


def _restore_registry(store: MonetXML, meta: Dict[str, object]) -> None:
    documents = meta.get("documents")
    if documents is None:
        return
    if not isinstance(documents, dict):
        raise StorageError("snapshot meta field 'documents' is not an object")
    registry: Dict[str, Tuple[int, int]] = {}
    for name, span in documents.items():
        if (
            not isinstance(span, (list, tuple))
            or len(span) != 2
            or not all(
                isinstance(oid, int) and not isinstance(oid, bool) for oid in span
            )
        ):
            raise StorageError(
                f"snapshot document span for {name!r} is malformed: {span!r}"
            )
        registry[str(name)] = (span[0], span[1])
    store.documents = registry


def _rebuild_lca_index(
    reader: SnapshotReader, store: MonetXML, meta: Dict[str, object]
) -> LcaIndex:
    tour = reader.array("lca/tour")
    depth = reader.array("lca/depth")
    first = reader.array("lca/first")
    last = reader.array("lca/last")
    log = reader.array("lca/log")
    if len(tour) != len(depth):
        raise StorageError("LCA tour and depth columns disagree in length")
    if len(first) != store.node_count or len(last) != store.node_count:
        raise StorageError("LCA first/last columns disagree with the node count")
    if len(log) != len(tour) + 1:
        raise StorageError("LCA log column disagrees with the tour length")
    if _meta_int(meta, "tour_length", len(tour)) != len(tour):
        raise StorageError("LCA tour length disagrees with the meta section")
    lengths = reader.tolist("lca/table_lens")
    table_rows = _slice_runs(reader.array("lca/table"), lengths, "lca/table")
    expected_rows = log[len(tour)] if len(tour) else 0
    if len(table_rows) != expected_rows:
        raise StorageError(
            f"LCA sparse table has {len(table_rows)} rows, expected {expected_rows}"
        )
    return LcaIndex.from_arrays(
        store,
        tour=tour,
        depth=depth,
        first=first,
        last=last,
        log=log,
        table_rows=table_rows,
    )


def _rebuild_fulltext_index(
    reader: SnapshotReader, store: MonetXML, meta: Dict[str, object]
) -> FullTextIndex:
    terms = reader.strings("ft/terms")
    lengths = reader.tolist("ft/lens")
    if len(terms) != len(lengths):
        raise StorageError("full-text term and length columns disagree")
    pid_runs = _slice_runs(reader.array("ft/pids"), lengths, "ft/pids")
    oid_runs = _slice_runs(reader.array("ft/oids"), lengths, "ft/oids")
    return FullTextIndex.from_term_columns(
        store,
        zip(terms, pid_runs, oid_runs),
        case_sensitive=bool(meta.get("case_sensitive", False)),
        indexed_associations=_meta_int(meta, "indexed_associations", 0),
    )


def _rebuild_value_index(
    reader: SnapshotReader, store: MonetXML, meta: Dict[str, object]
) -> Optional[ValueIndex]:
    """The bundled ``vx/*`` value index, or ``None`` for older bundles.

    Pre-PR-9 bundles simply lack the sections — their absence is the
    backward-compat path, not an error — and declared-but-missing
    columns never arise because the writer emits both or neither.
    """
    if "vx/pids" not in reader:
        return None
    pids = reader.tolist("vx/pids")
    lengths = reader.tolist("vx/lens")
    if len(pids) != len(lengths):
        raise StorageError("value-index pid and length columns disagree")
    oid_runs = _slice_runs(reader.array("vx/oids"), lengths, "vx/oids")
    value_runs = _slice_runs(reader.strings("vx/values"), lengths, "vx/values")
    declared = meta.get("value_indexes", [])
    if not isinstance(declared, list) or not all(
        isinstance(pattern, str) for pattern in declared
    ):
        raise StorageError(
            "snapshot meta field 'value_indexes' is not a list of strings"
        )
    return ValueIndex.from_path_columns(
        store,
        zip(pids, oid_runs, value_runs),
        declared=declared,
    )


def read_snapshot(
    source: Union[str, FsPath, bytes, bytearray, memoryview],
    *,
    use_mmap: bool = False,
    tolerate_torn_tail: bool = False,
) -> Snapshot:
    """Load a bundle and seed the store's derived-index caches.

    ``source`` is a file path (optionally ``mmap``-backed) or an
    in-memory buffer.  On return, :func:`~repro.core.lca_index.get_lca_index`
    and :func:`~repro.fulltext.index.get_fulltext_index` answer from
    the deserialized indexes — zero constructions — for any engine
    bound to the returned store.

    Any ``delta/*`` sections (live mutations appended after the base
    build, see :mod:`repro.snapshot.deltas`) are replayed over the
    store in sequence order before returning; the seeded full-text
    index rolls forward through the mutation journal on first use.
    ``tolerate_torn_tail`` additionally forgives a torn final section
    left by an interrupted delta append — that mutation was never
    acknowledged — and is the mode write-capable openers should use.
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        reader = SnapshotReader(source, tolerate_torn_tail=tolerate_torn_tail)
        path: Optional[FsPath] = None
    else:
        path = FsPath(source)
        reader = SnapshotReader.open(
            path, use_mmap=use_mmap, tolerate_torn_tail=tolerate_torn_tail
        )
    meta = reader.json("meta")
    if not isinstance(meta, dict):
        raise StorageError("snapshot meta section is not a JSON object")
    store = _rebuild_store(reader, meta)
    _restore_registry(store, meta)
    lca = _rebuild_lca_index(reader, store, meta)
    fulltext = _rebuild_fulltext_index(reader, store, meta)
    value_index = _rebuild_value_index(reader, store, meta)
    seed_lca_index(store, lca)
    seed_fulltext_index(store, fulltext)
    if value_index is not None:
        seed_value_index(store, value_index)
    deltas = read_delta_ops(reader)
    if deltas:
        apply_delta_ops(store, deltas)
    return Snapshot(
        store=store,
        lca_index=lca,
        fulltext_index=fulltext,
        meta=meta,
        path=path,
        delta_count=len(deltas),
        value_index=value_index,
    )
