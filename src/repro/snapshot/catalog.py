"""A directory of named document collections, each a snapshot bundle.

The multi-document face of the snapshot store: one catalog directory
holds a ``catalog.json`` manifest plus one ``<name>.snap`` bundle per
collection.  The manifest records per-collection metadata — source
file, node count, byte size, a monotonically increasing **generation**
bumped on every rebuild, timestamps — so servers and the CLI can
list, open and refresh collections without touching the bundles.

Typical flow::

    catalog = Catalog("warehouse")
    catalog.ingest("dblp", "dblp.xml")        # parse → snapshot
    snap = catalog.open("dblp")               # O(bytes), caches seeded
    engine = snap.engine()                    # zero index constructions

Collection names are restricted to filesystem-safe characters; every
failure mode (unknown collection, invalid name, corrupt bundle or
manifest) raises :class:`~repro.datamodel.errors.StorageError`.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path as FsPath
from typing import Dict, List, Optional, Sequence, Union

from ..datamodel.errors import StorageError
from ..monet.engine import MonetXML
from .codec import Snapshot, read_snapshot, write_snapshot

__all__ = ["Catalog", "CATALOG_FILE", "CATALOG_FORMAT", "CATALOG_VERSION"]

CATALOG_FILE = "catalog.json"
CATALOG_FORMAT = "repro-snapshot-catalog"
CATALOG_VERSION = 1

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise StorageError(
            f"invalid collection name {name!r}: use letters, digits, '.', "
            "'_' or '-' (must start with a letter or digit)"
        )
    if name.endswith(".snap"):
        # Such a name would be unaddressable: every load path treats a
        # ``.snap`` suffix as a bundle file, never a collection name.
        raise StorageError(
            f"invalid collection name {name!r}: must not end in '.snap'"
        )
    return name


class Catalog:
    """Manage the snapshot bundles of one directory.

    The manifest is re-read per operation (cheap, and keeps multiple
    processes pointed at one directory coherent enough for the CLI
    workflow); writes go through a temp-file rename.
    """

    def __init__(self, root: Union[str, FsPath], *, create: bool = True):
        self.root = FsPath(root)
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise StorageError(f"no such catalog directory: {self.root}")

    # -- manifest -------------------------------------------------------
    @property
    def manifest_path(self) -> FsPath:
        return self.root / CATALOG_FILE

    def _read_manifest(self) -> Dict[str, Dict[str, object]]:
        path = self.manifest_path
        if not path.exists():
            return {}
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"corrupt catalog manifest {path}: {exc}") from exc
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != CATALOG_FORMAT
        ):
            raise StorageError(f"{path} is not a snapshot catalog manifest")
        if manifest.get("version") != CATALOG_VERSION:
            raise StorageError(
                f"unsupported catalog version {manifest.get('version')!r} in {path}"
            )
        collections = manifest.get("collections")
        if not isinstance(collections, dict):
            raise StorageError(f"catalog manifest {path} has no collections map")
        return collections

    def _write_manifest(self, collections: Dict[str, Dict[str, object]]) -> None:
        payload = {
            "format": CATALOG_FORMAT,
            "version": CATALOG_VERSION,
            "collections": collections,
        }
        temp = self.manifest_path.with_suffix(".json.tmp")
        temp.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
        temp.replace(self.manifest_path)

    # -- queries --------------------------------------------------------
    def collections(self) -> Dict[str, Dict[str, object]]:
        """name → metadata for every registered collection (sorted)."""
        return dict(sorted(self._read_manifest().items()))

    def names(self) -> List[str]:
        return sorted(self._read_manifest())

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._read_manifest()

    def info(self, name: str) -> Dict[str, object]:
        try:
            return self._read_manifest()[name]
        except KeyError:
            raise StorageError(
                f"no collection {name!r} in catalog {self.root}"
            ) from None

    def bundle_path(self, name: str) -> FsPath:
        return self.root / f"{_check_name(name)}.snap"

    def find_source(self, source: Union[str, FsPath]) -> Optional[str]:
        """The collection built from ``source``, if its bundle is fresh.

        A hit requires the recorded source to resolve to the same file
        *and* the source's current (size, mtime) to equal the
        fingerprint taken at build time — any change to the file,
        including a restore of older content with a backdated mtime,
        sends the caller back to parsing rather than risking stale
        data.
        """
        try:
            resolved = FsPath(source).resolve()
            stat = resolved.stat()
        except OSError:
            return None
        for name, meta in self._read_manifest().items():
            recorded = meta.get("source")
            if not isinstance(recorded, str):
                continue
            try:
                if FsPath(recorded).resolve() != resolved:
                    continue
            except OSError:
                continue
            if (
                meta.get("source_bytes") == stat.st_size
                and meta.get("source_mtime_ns") == stat.st_mtime_ns
                and self._bundles_exist(name, meta)
            ):
                return name
        return None

    def _bundles_exist(self, name: str, meta: Dict[str, object]) -> bool:
        shards = meta.get("shards")
        if isinstance(shards, dict):
            files = shards.get("files", ())
            return bool(files) and all(
                (self.root / str(file)).exists() for file in files
            )
        return self.bundle_path(name).exists()

    def shard_files(self, name: str) -> List[FsPath]:
        """The shard bundle paths of a sharded collection, in order."""
        meta = self.info(name)
        shards = meta.get("shards")
        if not isinstance(shards, dict):
            raise StorageError(
                f"collection {name!r} in catalog {self.root} is not sharded"
            )
        files = shards.get("files")
        if not isinstance(files, list) or not files:
            raise StorageError(
                f"collection {name!r} records a shard layout without files"
            )
        return [self.root / str(file) for file in files]

    # -- mutations ------------------------------------------------------
    def build(
        self,
        name: str,
        store: MonetXML,
        *,
        source: Optional[Union[str, FsPath]] = None,
        case_sensitive: bool = False,
        shards: Optional[int] = None,
        value_indexes: Optional[Sequence[str]] = None,
        _source_stat: Optional[os.stat_result] = None,
    ) -> Dict[str, object]:
        """Snapshot ``store`` under ``name``; returns the new metadata.

        Rebuilding an existing collection bumps its generation and
        atomically replaces the bundle(s).  With ``shards`` the store
        is partitioned (:mod:`repro.exec.sharding`) and written as one
        bundle per shard — ``shards=1`` included, so the layout is
        persisted and a later ``serve --workers M`` runs from the
        recorded bundles instead of re-slicing; ``None`` builds the
        classic monolithic bundle.  The manifest records the layout so
        openers can scatter-gather without loading anything first.
        ``value_indexes`` declares typed value indexes for the
        collection (path pattern strings): the declarations are
        recorded in the manifest and the built index is bundled as
        ``vx/*`` sections (per shard, for sharded layouts), so opens
        start probe-ready.  ``_source_stat`` lets :meth:`ingest` record
        the fingerprint of the content it actually read (stat'ed
        *before* reading), so a source modified mid-ingest can never
        fingerprint as fresh.
        """
        _check_name(name)
        if shards is not None and shards < 1:
            raise StorageError(f"shard count must be >= 1, got {shards}")
        declarations = sorted(set(value_indexes)) if value_indexes else None
        collections = self._read_manifest()
        previous = collections.get(name, {})
        try:
            generation = int(previous.get("generation", 0)) + 1
        except (TypeError, ValueError):
            raise StorageError(
                f"corrupt catalog manifest {self.manifest_path}: generation "
                f"of {name!r} is not a number"
            ) from None
        bundle = self.bundle_path(name)
        shard_meta: Optional[Dict[str, object]] = None
        if shards is not None:
            from .sharded import write_shard_bundles

            plan, paths, size = write_shard_bundles(
                store,
                self.root,
                name,
                shards=shards,
                case_sensitive=case_sensitive,
                value_indexes=declarations,
                extra_meta={
                    "collection": name,
                    "collection_generation": generation,
                },
            )
            shard_meta = plan.to_dict()
            shard_meta["files"] = [path.name for path in paths]
        else:
            temp = bundle.with_suffix(".snap.tmp")
            try:
                size = write_snapshot(
                    store,
                    temp,
                    case_sensitive=case_sensitive,
                    value_indexes=declarations,
                    extra_meta={
                        "collection": name,
                        "collection_generation": generation,
                    },
                )
                temp.replace(bundle)
            except BaseException:
                temp.unlink(missing_ok=True)
                raise
        source_fingerprint: Dict[str, object] = {}
        if source is not None:
            try:
                stat = _source_stat or FsPath(source).stat()
                source_fingerprint = {
                    "source_bytes": stat.st_size,
                    "source_mtime_ns": stat.st_mtime_ns,
                }
            except OSError:
                pass  # unreadable source: recorded without a fingerprint
        meta: Dict[str, object] = {
            "file": None if shard_meta is not None else bundle.name,
            "source": str(FsPath(source).resolve()) if source is not None else None,
            **source_fingerprint,
            "node_count": store.node_count,
            "path_count": len(store.summary) - 1,
            "bytes": size,
            "generation": generation,
            "case_sensitive": case_sensitive,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        }
        if declarations:
            meta["value_indexes"] = declarations
        if shard_meta is not None:
            meta["shards"] = shard_meta
        collections[name] = meta
        self._write_manifest(collections)
        # Destructive cleanup strictly *after* the manifest flip: a
        # crash anywhere above leaves the previous build fully
        # servable (its bundles untouched, the old manifest intact); a
        # crash below leaves only harmless orphan files.
        self._remove_stale_files(name, previous, shard_meta)
        return meta

    def _remove_stale_files(
        self,
        name: str,
        previous: Dict[str, object],
        current: Optional[Dict[str, object]],
    ) -> None:
        """Unlink files of the previous build the new one did not
        replace: surplus shard bundles (fewer shards, or back to
        monolithic) and the monolithic bundle after a sharded build."""
        keep = set((current or {}).get("files", ()))
        old = previous.get("shards")
        if isinstance(old, dict):
            for file in old.get("files", ()):
                if isinstance(file, str) and file not in keep:
                    (self.root / file).unlink(missing_ok=True)
        if current is not None:
            self.bundle_path(name).unlink(missing_ok=True)

    def ingest(
        self,
        name: str,
        source: Union[str, FsPath],
        *,
        case_sensitive: bool = False,
        shards: Optional[int] = None,
        value_indexes: Optional[Sequence[str]] = None,
    ) -> Dict[str, object]:
        """Parse an XML file (or legacy ``.json`` image) and snapshot it."""
        from ..datamodel.parser import parse_document
        from ..monet import storage
        from ..monet.transform import monet_transform

        source = FsPath(source)
        try:
            # Fingerprint before reading: content that changes during
            # the (potentially long) parse must not register as fresh.
            source_stat = source.stat()
        except OSError:
            raise StorageError(f"no such source file: {source}") from None
        if source.suffix == ".json":
            store = storage.load(source)
        else:
            text = source.read_text(encoding="utf-8")
            store = monet_transform(parse_document(text, first_oid=1))
        return self.build(
            name,
            store,
            source=source,
            case_sensitive=case_sensitive,
            shards=shards,
            value_indexes=value_indexes,
            _source_stat=source_stat,
        )

    def is_sharded(self, name: str) -> bool:
        return isinstance(self.info(name).get("shards"), dict)

    def open(
        self,
        name: str,
        *,
        use_mmap: bool = False,
        tolerate_torn_tail: bool = False,
    ) -> Snapshot:
        """Load one collection's bundle; caches come back pre-seeded.

        Any delta tail is replayed by :func:`read_snapshot`;
        ``tolerate_torn_tail`` is what write-capable openers pass so an
        interrupted delta append (never acknowledged) is dropped
        instead of failing the load.
        """
        meta = self.info(name)
        if isinstance(meta.get("shards"), dict):
            raise StorageError(
                f"collection {name!r} is sharded ("
                f"{meta['shards'].get('count')} shards); open it through "
                "repro.open / Database, which scatter-gathers the shards"
            )
        bundle = self.bundle_path(name)
        if not bundle.exists():
            raise StorageError(
                f"collection {name!r} is registered but its bundle "
                f"{bundle.name} is missing from {self.root}"
            )
        snapshot = read_snapshot(
            bundle, use_mmap=use_mmap, tolerate_torn_tail=tolerate_torn_tail
        )
        snapshot.meta.setdefault("catalog", str(self.root))
        snapshot.meta.setdefault("collection", name)
        snapshot.meta.setdefault("collection_meta", meta)
        return snapshot

    def note_mutation(self, name: str) -> None:
        """Record that ``name``'s bundle diverged from its source file.

        Called when the first delta lands on a collection built from a
        source document: the bundle no longer reproduces that file, so
        the source fingerprint is dropped — :meth:`find_source` must
        send future opens of the file back to parsing instead of
        serving the mutated collection.  The source path itself stays
        for provenance.  Idempotent; a missing entry is an error.
        """
        collections = self._read_manifest()
        meta = collections.get(name)
        if meta is None:
            raise StorageError(f"no collection {name!r} in catalog {self.root}")
        if meta.get("mutated") and "source_bytes" not in meta:
            return
        meta.pop("source_bytes", None)
        meta.pop("source_mtime_ns", None)
        meta["mutated"] = True
        self._write_manifest(collections)

    def compact(
        self,
        name: str,
        *,
        shards: Optional[int] = None,
        use_mmap: bool = False,
    ) -> Dict[str, object]:
        """Fold a collection's delta tail into a fresh base bundle.

        Loads the bundle (replaying its deltas, forgiving a torn
        tail), compacts the store to dense pre-order and rebuilds the
        collection through :meth:`build` — i.e. behind the same
        crash-safe temp-write → rename → manifest-flip sequence as any
        rebuild, so the previous build keeps serving until the flip
        and a crash at any point leaves a fully servable bundle.
        ``shards`` re-balances the layout (``None`` keeps the
        collection monolithic and writable; ``N`` writes per-shard
        bundles for ``serve --workers``).  The new metadata drops the
        source association: the compacted content comes from the live
        collection, not from any file on disk.

        Sharded collections are refused — they are read-only (no delta
        tail accumulates) and their original monolithic store is gone;
        re-ingest from source to re-balance those.
        """
        meta = self.info(name)
        if isinstance(meta.get("shards"), dict):
            raise StorageError(
                f"collection {name!r} is sharded; sharded bundles are "
                "read-only and carry no deltas — re-ingest from source "
                "to re-balance"
            )
        from ..monet.mutate import compact_store

        snapshot = self.open(name, use_mmap=use_mmap, tolerate_torn_tail=True)
        store, _ = compact_store(snapshot.store)
        declared = meta.get("value_indexes")
        return self.build(
            name,
            store,
            case_sensitive=bool(meta.get("case_sensitive", False)),
            shards=shards,
            value_indexes=declared if isinstance(declared, list) else None,
        )

    def drop(self, name: str) -> None:
        """Remove a collection's bundle(s) and manifest entry."""
        collections = self._read_manifest()
        if name not in collections:
            raise StorageError(f"no collection {name!r} in catalog {self.root}")
        meta = collections.pop(name)
        bundle = self.bundle_path(name)
        if bundle.exists():
            bundle.unlink()
        shards = meta.get("shards")
        if isinstance(shards, dict):
            for file in shards.get("files", ()):
                if isinstance(file, str):
                    (self.root / file).unlink(missing_ok=True)
        self._write_manifest(collections)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Catalog root={str(self.root)!r} collections={len(self.names())}>"
