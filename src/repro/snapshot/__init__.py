"""Snapshot store: binary columnar persistence with zero-rebuild loads.

The JSON image of :mod:`repro.monet.storage` persists the *raw* store
and pays a full re-parse of its relations plus an index rebuild on
every process start.  This package persists the store **and** its
derived indexes — the Euler-RMQ LCA machinery and the full-text term
columns — as raw column buffers in one checksummed bundle, so a warm
start is O(bytes) instead of O(rebuild):

* :mod:`repro.snapshot.format` — the versioned binary container
  (magic, format version, per-section CRC-32 checksums, ``mmap``-able
  column sections);
* :mod:`repro.snapshot.codec` — :func:`write_snapshot` /
  :func:`read_snapshot` bundling store, LCA index and full-text index,
  with the per-store generation-keyed caches seeded on load;
* :mod:`repro.snapshot.catalog` — :class:`Catalog`, a directory of
  named collections with per-collection metadata and generations;
* :mod:`repro.snapshot.sharded` — the shard-aware extension: one
  bundle per shard plus a recorded layout, so sharded collections
  warm-start rebuild-free too (serially or behind a worker pool).

See ``benchmarks/bench_cold_start.py`` for the parse-and-rebuild vs
snapshot-load comparison across the bundled datasets.
"""

from .catalog import Catalog
from .codec import Snapshot, read_snapshot, write_snapshot
from .deltas import DeltaOp, append_delta, read_delta_ops
from .format import (
    FORMAT_VERSION,
    MAGIC,
    SnapshotReader,
    SnapshotWriter,
    append_section,
)
from .sharded import (
    read_snapshot_header,
    shard_bundle_name,
    write_shard_bundles,
)

__all__ = [
    "Catalog",
    "DeltaOp",
    "Snapshot",
    "append_delta",
    "append_section",
    "read_delta_ops",
    "read_snapshot",
    "write_snapshot",
    "read_snapshot_header",
    "shard_bundle_name",
    "write_shard_bundles",
    "SnapshotReader",
    "SnapshotWriter",
    "FORMAT_VERSION",
    "MAGIC",
]
