"""Shard-aware snapshot persistence: one bundle per shard, one layout.

A sharded collection persists as N ordinary ``.snap`` bundles — each a
complete, self-describing snapshot of its shard store (full path
summary, own LCA and full-text indexes, pre-seeded caches on load) —
plus a layout record (:meth:`repro.exec.sharding.ShardPlan.to_dict`)
that the catalog manifest carries.  Warm starts therefore stay
rebuild-free per shard: a serial open loads every bundle; a parallel
open hands the bundle *paths* to the worker pool and loads only shard
0's summary in the coordinator (all bundles carry the identical
global summary, so pids agree everywhere).
"""

from __future__ import annotations

from pathlib import Path as FsPath
from typing import Dict, List, Optional, Tuple, Union

from ..datamodel.errors import StorageError
from ..exec.sharding import ShardPlan, compute_shard_plan, slice_store
from ..monet.engine import MonetXML
from ..monet.pathsummary import PathSummary
from .codec import _rebuild_summary, write_snapshot
from .format import SnapshotReader

__all__ = [
    "shard_bundle_name",
    "write_shard_bundles",
    "read_snapshot_header",
    "layout_from_meta",
]


def shard_bundle_name(base: str, shard: int) -> str:
    """The on-disk name of one shard's bundle (``base.shard0.snap``)."""
    return f"{base}.shard{shard}.snap"


def write_shard_bundles(
    store: MonetXML,
    directory: Union[str, FsPath],
    base: str,
    *,
    shards: int,
    case_sensitive: bool = False,
    value_indexes: Optional[List[str]] = None,
    extra_meta: Optional[Dict[str, object]] = None,
) -> Tuple[ShardPlan, List[FsPath], int]:
    """Slice ``store`` and write one bundle per shard into ``directory``.

    Returns ``(plan, bundle paths, total bytes)``.  Bundles are written
    to temp names and renamed, so a crash mid-build leaves no
    half-written ``.snap`` behind; the *set* of files only becomes
    authoritative once the caller records the returned layout (the
    catalog writes its manifest after this returns).
    """
    directory = FsPath(directory)
    plan = compute_shard_plan(store, shards)
    slices = slice_store(store, plan)
    paths: List[FsPath] = []
    total = 0
    written: List[FsPath] = []
    try:
        for index, shard_store in enumerate(slices):
            bundle = directory / shard_bundle_name(base, index)
            temp = bundle.with_suffix(".snap.tmp")
            meta: Dict[str, object] = {
                "shard_index": index,
                "shard_count": plan.shard_count,
                "shard_layout": plan.to_dict(),
            }
            if extra_meta:
                meta.update(extra_meta)
            total += write_snapshot(
                shard_store, temp, case_sensitive=case_sensitive,
                value_indexes=value_indexes, extra_meta=meta,
            )
            written.append(temp)
            paths.append(bundle)
        for temp, bundle in zip(written, paths):
            temp.replace(bundle)
    except BaseException:
        for temp in written:
            temp.unlink(missing_ok=True)
        raise
    return plan, paths, total


def read_snapshot_header(
    path: Union[str, FsPath]
) -> Tuple[Dict[str, object], PathSummary]:
    """A bundle's meta section and path summary, without the store.

    This is the parallel coordinator's open path: it needs the global
    summary (for planning, ranking keys and path rendering) and the
    recorded layout, while the stores themselves live in the worker
    processes.  The open-time checksum pass still validates the whole
    bundle.
    """
    reader = SnapshotReader.open(FsPath(path), use_mmap=True)
    meta = reader.json("meta")
    if not isinstance(meta, dict):
        raise StorageError("snapshot meta section is not a JSON object")
    return meta, _rebuild_summary(reader)


def layout_from_meta(meta: Dict[str, object]) -> ShardPlan:
    """The shard layout recorded in a bundle's (or manifest's) meta."""
    payload = meta.get("shard_layout") if "shard_layout" in meta else meta
    if not isinstance(payload, dict):
        raise StorageError("snapshot meta carries no shard layout")
    return ShardPlan.from_dict(payload)
