"""The binary columnar container under the snapshot store.

A snapshot file is a fixed header followed by named **sections**, each
an opaque byte payload with its own CRC-32 checksum::

    header   := magic "RXSN" | version u16 | byteorder u8 | pad u8
    section  := name_len u16 | crc32 u32 | payload_len u64
              | name (utf-8) | padding to 8-byte file offset | payload

Sections carry raw column buffers (``array('q').tobytes()``), packed
string tables (offset column + UTF-8 blob) or small JSON metadata.
Reads are O(bytes): integer columns come back as zero-copy
``memoryview`` casts over the file buffer (optionally ``mmap``-backed),
so opening a snapshot costs one checksum pass and no per-value Python
work.

Every corruption mode — bad magic, unsupported version, a checksum
mismatch, a section running past end-of-file — raises
:class:`~repro.datamodel.errors.StorageError` with a precise reason;
``KeyError``/``struct.error`` never escape this module.

Live bundles grow in place: :func:`append_section` adds one framed
section to an existing file (the delta tail of
:mod:`repro.snapshot.deltas`).  A crash mid-append leaves a *torn
tail* — trailing bytes that fail framing or checksum at the very end
of the file.  ``tolerate_torn_tail=True`` makes the reader drop
exactly that (an unacknowledged append), while corruption anywhere
before the tail stays fatal.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
import zlib
from array import array
from pathlib import Path as FsPath
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from ..datamodel.errors import StorageError

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "SnapshotWriter",
    "SnapshotReader",
    "append_section",
    "pack_strings",
]

#: First four bytes of every snapshot file.
MAGIC = b"RXSN"
#: Bumped on any incompatible layout change.
FORMAT_VERSION = 1

_FILE_HEADER = struct.Struct("<4sHBx")
_SECTION_HEADER = struct.Struct("<HIQ")
_LITTLE, _BIG = 0, 1
_NATIVE_ORDER = _LITTLE if sys.byteorder == "little" else _BIG
_ALIGNMENT = 8


def _pad_to(offset: int) -> int:
    """Bytes of zero padding needed to align ``offset`` to 8."""
    return (-offset) % _ALIGNMENT


def pack_strings(strings: Iterable[str]) -> bytes:
    """Pack strings as one self-contained column: count, offsets, blob.

    Layout: ``count u64 | (count+1) int64 end offsets | UTF-8 blob``.
    The offset column makes unpacking O(1) per string with no scanning.
    """
    blob = bytearray()
    offsets = array("q", [0])
    count = 0
    for text in strings:
        blob += text.encode("utf-8")
        offsets.append(len(blob))
        count += 1
    return struct.pack("<Q", count) + offsets.tobytes() + bytes(blob)


class SnapshotWriter:
    """Accumulates named sections and writes the framed container.

    Payloads are held by reference (as byte-cast memoryviews), not
    copied, and :meth:`write` streams them section by section — the
    writer never materializes a second whole-bundle buffer.  Callers
    must not mutate a buffer between ``add_*`` and ``write``.
    """

    def __init__(self, *, _byteorder: int = _NATIVE_ORDER):
        # _byteorder is a test seam for exercising the cross-endian
        # reader fallback; production writers always use native order.
        self._byteorder = _byteorder
        self._sections: List[Tuple[str, memoryview]] = []
        self._names: set = set()

    def add_bytes(self, name: str, payload: Union[bytes, bytearray, memoryview]) -> None:
        if name in self._names:
            raise ValueError(f"duplicate snapshot section {name!r}")
        self._names.add(name)
        self._sections.append((name, memoryview(payload).cast("B")))

    def add_array(self, name: str, values: Union[array, Sequence[int], Iterable[int]]) -> None:
        """Add one int64 column (anything iterable of ints)."""
        column = values if isinstance(values, array) and values.typecode == "q" else array("q", values)
        if self._byteorder != _NATIVE_ORDER:
            column = array("q", column)
            column.byteswap()
        # The memoryview keeps the column alive until the write.
        self.add_bytes(name, memoryview(column))

    def add_json(self, name: str, obj: object) -> None:
        self.add_bytes(name, json.dumps(obj, sort_keys=True).encode("utf-8"))

    def add_strings(self, name: str, strings: Iterable[str]) -> None:
        """Add a packed string column (see :func:`pack_strings`)."""
        payload = pack_strings(strings)
        if self._byteorder != _NATIVE_ORDER:
            count = struct.unpack_from("<Q", payload)[0]
            offsets = array("q")
            offsets.frombytes(payload[8 : 8 + 8 * (count + 1)])
            offsets.byteswap()
            payload = payload[:8] + offsets.tobytes() + payload[8 + 8 * (count + 1) :]
        self.add_bytes(name, payload)

    def _emit(self, out) -> int:
        """Feed the framed container to ``out`` chunk by chunk."""
        total = 0

        def push(chunk) -> None:
            nonlocal total
            out(chunk)
            total += len(chunk)

        push(_FILE_HEADER.pack(MAGIC, FORMAT_VERSION, self._byteorder))
        for name, payload in self._sections:
            encoded = name.encode("utf-8")
            push(
                _SECTION_HEADER.pack(
                    len(encoded), zlib.crc32(payload) & 0xFFFFFFFF, len(payload)
                )
            )
            push(encoded)
            padding = _pad_to(total)
            if padding:
                push(b"\0" * padding)
            push(payload)
        return total

    def tobytes(self) -> bytes:
        buffer = bytearray()
        self._emit(buffer.__iadd__)
        return bytes(buffer)

    def write(self, path: Union[str, FsPath]) -> int:
        """Stream the container to ``path``; returns the byte count."""
        with open(FsPath(path), "wb") as handle:
            return self._emit(handle.write)


class SnapshotReader:
    """Validated random access to the sections of one snapshot buffer.

    Construction parses the framing and checksums **every** section up
    front, so a reader that constructs successfully is internally
    consistent; accessors can only fail on a missing section or a
    section of the wrong shape.
    """

    def __init__(
        self,
        buffer: Union[bytes, bytearray, memoryview],
        source: str = "<bytes>",
        *,
        tolerate_torn_tail: bool = False,
    ):
        self._view = memoryview(buffer)
        self._source = source
        self._sections: Dict[str, Tuple[int, int]] = {}
        #: True when a torn tail was dropped (tolerant mode only).
        self.torn_tail = False
        #: Byte offset up to which the file parsed cleanly — the whole
        #: file normally, the torn section's start after a drop.  The
        #: next :func:`append_section` truncates to this offset.
        self.valid_size = 0
        self._parse(tolerate_torn_tail)

    # -- construction ---------------------------------------------------
    @classmethod
    def open(
        cls,
        path: Union[str, FsPath],
        *,
        use_mmap: bool = False,
        tolerate_torn_tail: bool = False,
    ) -> "SnapshotReader":
        """Open a snapshot file, optionally mapping it into memory.

        With ``use_mmap=True`` column accessors return views straight
        over the page cache; the mapping lives as long as any view.
        """
        path = FsPath(path)
        try:
            if use_mmap:
                with open(path, "rb") as handle:
                    mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
                return cls(
                    memoryview(mapped),
                    source=str(path),
                    tolerate_torn_tail=tolerate_torn_tail,
                )
            return cls(
                path.read_bytes(),
                source=str(path),
                tolerate_torn_tail=tolerate_torn_tail,
            )
        except OSError as exc:
            raise StorageError(f"cannot read snapshot {path}: {exc}") from exc
        except ValueError as exc:
            # mmap refuses zero-length files with a bare ValueError.
            raise StorageError(f"cannot map snapshot {path}: {exc}") from exc

    def _parse(self, tolerant: bool = False) -> None:
        view = self._view
        if len(view) < _FILE_HEADER.size:
            raise StorageError(
                f"truncated snapshot {self._source}: "
                f"{len(view)} bytes is shorter than the {_FILE_HEADER.size}-byte header"
            )
        magic, version, byteorder = _FILE_HEADER.unpack_from(view, 0)
        if magic != MAGIC:
            raise StorageError(
                f"bad magic in {self._source}: expected {MAGIC!r}, found {bytes(magic)!r}"
            )
        if version != FORMAT_VERSION:
            raise StorageError(
                f"unsupported snapshot version {version} in {self._source} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        if byteorder not in (_LITTLE, _BIG):
            raise StorageError(
                f"corrupt byte-order marker {byteorder!r} in {self._source}"
            )
        self._byteorder = byteorder
        position = _FILE_HEADER.size
        total = len(view)
        while position < total:
            section_start = position
            self.valid_size = section_start
            # The first three failure modes below can only occur in the
            # final bytes of the file (each runs past end-of-file), so
            # tolerant mode may drop them as a torn append; a checksum
            # failure qualifies only when the bad section itself ends at
            # end-of-file.  Everything else is real corruption.
            if position + _SECTION_HEADER.size > total:
                if tolerant:
                    self.torn_tail = True
                    return
                raise StorageError(
                    f"truncated section header at offset {position} in {self._source}"
                )
            name_len, crc, payload_len = _SECTION_HEADER.unpack_from(view, position)
            position += _SECTION_HEADER.size
            if position + name_len > total:
                if tolerant:
                    self.torn_tail = True
                    return
                raise StorageError(
                    f"truncated section name at offset {position} in {self._source}"
                )
            try:
                name = bytes(view[position : position + name_len]).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise StorageError(
                    f"corrupt section name at offset {position} in {self._source}"
                ) from exc
            position += name_len
            position += _pad_to(position)
            if position + payload_len > total:
                if tolerant:
                    self.torn_tail = True
                    return
                raise StorageError(
                    f"truncated section {name!r} in {self._source}: payload of "
                    f"{payload_len} bytes runs past end-of-file"
                )
            payload = view[position : position + payload_len]
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                if tolerant and position + payload_len == total:
                    self.torn_tail = True
                    return
                raise StorageError(
                    f"checksum failure in section {name!r} of {self._source}"
                )
            if name in self._sections:
                raise StorageError(
                    f"duplicate section {name!r} in {self._source}"
                )
            self._sections[name] = (position, payload_len)
            position += payload_len
        self.valid_size = position

    # -- accessors ------------------------------------------------------
    def section_names(self) -> List[str]:
        return list(self._sections)

    def section_sizes(self) -> Dict[str, int]:
        """Payload bytes per section, in file order (framing excluded)."""
        return {name: length for name, (_, length) in self._sections.items()}

    def __contains__(self, name: object) -> bool:
        return name in self._sections

    def _payload(self, name: str) -> memoryview:
        entry = self._sections.get(name)
        if entry is None:
            raise StorageError(f"snapshot {self._source} has no section {name!r}")
        start, length = entry
        return self._view[start : start + length]

    def raw(self, name: str) -> memoryview:
        return self._payload(name)

    def array(self, name: str) -> Sequence[int]:
        """One int64 column, zero-copy on matching byte order.

        Returns a ``memoryview`` cast (native order) or a byteswapped
        ``array('q')`` copy (cross-endian file); both index, slice,
        iterate and ``tolist()`` identically.
        """
        payload = self._payload(name)
        if len(payload) % 8:
            raise StorageError(
                f"section {name!r} of {self._source} is not an int64 column "
                f"({len(payload)} bytes)"
            )
        if self._byteorder == _NATIVE_ORDER:
            return payload.cast("q")
        column = array("q")
        column.frombytes(payload)
        column.byteswap()
        return column

    def tolist(self, name: str) -> List[int]:
        return self.array(name).tolist()

    def json(self, name: str) -> object:
        try:
            return json.loads(bytes(self._payload(name)).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StorageError(
                f"corrupt JSON section {name!r} in {self._source}: {exc}"
            ) from exc

    def strings(self, name: str) -> List[str]:
        """Unpack a string column written by :meth:`SnapshotWriter.add_strings`."""
        payload = self._payload(name)
        if len(payload) < 8:
            raise StorageError(
                f"truncated string section {name!r} in {self._source}"
            )
        (count,) = struct.unpack_from("<Q", payload, 0)
        offsets_end = 8 + 8 * (count + 1)
        if offsets_end > len(payload):
            raise StorageError(
                f"truncated string offsets in section {name!r} of {self._source}"
            )
        offsets = array("q")
        offsets.frombytes(payload[8:offsets_end])
        if self._byteorder != _NATIVE_ORDER:
            offsets.byteswap()
        blob = payload[offsets_end:]
        if offsets[0] != 0 or offsets[-1] != len(blob):
            raise StorageError(
                f"inconsistent string offsets in section {name!r} of {self._source}"
            )
        try:
            text = bytes(blob).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise StorageError(
                f"corrupt UTF-8 blob in section {name!r} of {self._source}"
            ) from exc
        # Offsets are byte offsets; decode once and slice by bytes via
        # re-encoding only when multi-byte characters are present.
        if len(text) == len(blob):
            return [text[offsets[i] : offsets[i + 1]] for i in range(count)]
        raw = bytes(blob)
        try:
            return [
                raw[offsets[i] : offsets[i + 1]].decode("utf-8")
                for i in range(count)
            ]
        except UnicodeDecodeError as exc:
            raise StorageError(
                f"corrupt string boundaries in section {name!r} of {self._source}"
            ) from exc


def append_section(
    path: Union[str, FsPath],
    name: str,
    payload: Union[bytes, bytearray, memoryview],
    *,
    truncate_to: Union[int, None] = None,
) -> int:
    """Append one framed section to an existing snapshot file.

    The section is framed exactly as :class:`SnapshotWriter` frames it
    (header, name, pad to an 8-byte file offset, CRC-32 over the
    payload), so a strict reader accepts the grown file as-is.  The
    payload must be byte-order independent (JSON or raw bytes) — int64
    columns appended to a cross-endian file would read back swapped.

    ``truncate_to`` first discards a torn tail left by an interrupted
    append (pass :attr:`SnapshotReader.valid_size`).  The append itself
    is one write plus fsync; a crash mid-append leaves a torn tail that
    ``tolerate_torn_tail`` readers drop and the next append truncates.
    Returns the number of bytes appended.
    """
    path = FsPath(path)
    encoded = name.encode("utf-8")
    data = bytes(payload)
    try:
        with open(path, "r+b") as handle:
            header = handle.read(_FILE_HEADER.size)
            if len(header) < _FILE_HEADER.size:
                raise StorageError(
                    f"truncated snapshot {path}: shorter than the file header"
                )
            magic, version, _ = _FILE_HEADER.unpack(header)
            if magic != MAGIC or version != FORMAT_VERSION:
                raise StorageError(
                    f"{path} is not a version-{FORMAT_VERSION} snapshot; "
                    "refusing to append"
                )
            if truncate_to is not None:
                if truncate_to < _FILE_HEADER.size:
                    raise StorageError(
                        f"refusing to truncate snapshot {path} into its header "
                        f"(offset {truncate_to})"
                    )
                handle.truncate(truncate_to)
            handle.seek(0, os.SEEK_END)
            offset = handle.tell()
            chunk = bytearray(
                _SECTION_HEADER.pack(
                    len(encoded), zlib.crc32(data) & 0xFFFFFFFF, len(data)
                )
            )
            chunk += encoded
            chunk += b"\0" * _pad_to(offset + len(chunk))
            chunk += data
            handle.write(chunk)
            handle.flush()
            os.fsync(handle.fileno())
            return len(chunk)
    except OSError as exc:
        raise StorageError(f"cannot append to snapshot {path}: {exc}") from exc
