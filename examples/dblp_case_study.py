#!/usr/bin/env python3
"""The §5 case study: ICDE publications per year over synthetic DBLP.

Full-text search for "ICDE" and a year, meet with the root excluded —
the answer is (mostly) the ICDE publications of that year, although no
part of the query mentions 'inproceedings', 'booktitle' or any other
mark-up.  Widening the year interval back towards 1984 grows the
answer linearly, with a flat step at 1985 (no ICDE that year).

Run:  python examples/dblp_case_study.py
"""

from collections import Counter

from repro import NearestConceptEngine, monet_transform
from repro.datasets import DblpConfig, dblp_document


def main() -> None:
    config = DblpConfig(papers_per_proceedings=15, articles_per_year=5)
    print("generating synthetic DBLP …")
    store = monet_transform(dblp_document(config))
    print(f"   {store}")

    # The paper's Monet `contains` is case-sensitive; 'ICDE' must match
    # booktitles, not the lowercase 'icde' inside keys and URLs.
    engine = NearestConceptEngine(store, case_sensitive=True)

    print("\n== single year: ICDE 1999 ==")
    concepts = engine.nearest_concepts("ICDE", "1999", exclude_root=True)
    tags = Counter(concept.tag for concept in concepts)
    print(f"   {len(concepts)} nearest concepts: {dict(tags)}")
    print("   first three answers:")
    for concept in concepts[:3]:
        print(f"      <{concept.tag}>  {engine.snippet(concept, 70)}")

    print("\n== widening the interval 1999 → 1984 (Figure 7's x-axis) ==")
    print(f"   {'interval':>12}  {'answers':>7}  {'publications':>12}")
    for first_year in range(1999, 1983, -3):
        years = [str(year) for year in range(first_year, 2000)]
        concepts = engine.nearest_concepts("ICDE", *years, exclude_root=True)
        publications = sum(1 for c in concepts if c.tag == "inproceedings")
        print(
            f"   {first_year}-1999  {len(concepts):>7}  {publications:>12}"
        )
    print(
        "\n   note the 1985 gap: intervals crossing it gain no ICDE "
        "publications (the paper's 'small step at about 1100')."
    )

    print("\n== the same as a declarative query ==")
    from repro.fulltext import SearchEngine
    from repro.query import QueryProcessor

    # reuse case-sensitive `contains` (DBLP keys contain 'icde' lowercase)
    processor = QueryProcessor(
        store, search=SearchEngine(store, case_sensitive=True)
    )
    result = processor.execute(
        """
        select meet($conf, $when) exclude root
        from   dblp/# $conf, dblp/# $when
        where  $conf contains 'ICDE' and $when contains '1987'
        """
    )
    print(f"   {len(result)} rows for ICDE×1987")


if __name__ == "__main__":
    main()
