#!/usr/bin/env python3
"""Quickstart: nearest-concept queries in five minutes.

Parse an XML document you know nothing about, and ask questions by
content alone — the meet operator figures out *what kind of thing*
relates your search terms (the paper's "nearest concept").

Run:  python examples/quickstart.py
"""

from repro import NearestConceptEngine, monet_transform, parse_document

XML = """
<store>
  <inventory>
    <album id="a1">
      <artist>Miles Davis</artist>
      <title>Kind of Blue</title>
      <year>1959</year>
      <price currency="USD">9.99</price>
    </album>
    <album id="a2">
      <artist>John Coltrane</artist>
      <title>Blue Train</title>
      <year>1957</year>
    </album>
  </inventory>
  <staff>
    <person role="buyer"><name>Miles Harper</name><since>1999</since></person>
  </staff>
</store>
"""


def main() -> None:
    # 1. Parse and shred into the Monet XML store (path-partitioned
    #    binary relations; see Figure 2 of the paper).
    document = parse_document(XML)
    store = monet_transform(document)
    print(f"loaded: {store}")
    print("a few of the path-partitioned relations:")
    for name in store.relation_names()[:6]:
        print(f"   {name}")

    # 2. Build the engine (full-text index + meet operators).
    engine = NearestConceptEngine(store)

    # 3. Ask by content.  Note we never mention 'album', 'artist' …
    for terms in [("Davis", "1959"), ("Blue", "Train"), ("Miles", "1999")]:
        print(f"\nnearest concepts for {terms}:")
        for concept in engine.nearest_concepts(*terms):
            print(
                f"   <{concept.tag}> oid={concept.oid} "
                f"distance={concept.joins}  |  {engine.snippet(concept, 60)}"
            )

    # 4. The result type depends on the database instance, not the
    #    query: (Davis, 1959) found an album; (Miles, 1999) found the
    #    whole store, because those terms only relate at the top.
    print("\nbrowse the best answer as XML:")
    top = engine.nearest_concepts("Davis", "1959")[0]
    print(engine.to_xml(top))


if __name__ == "__main__":
    main()
