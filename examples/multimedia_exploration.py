#!/usr/bin/env python3
"""Exploring feature-detector output with nearest-concept queries (§5).

The paper's first dataset is multimedia metadata produced by feature
detectors — deeply nested, irregular, and nobody remembers the schema.
This example shows schema discovery plus meet queries over it, and the
distance/ranking machinery of §4.

Run:  python examples/multimedia_exploration.py
"""

from repro import NearestConceptEngine, monet_transform
from repro.core.distance import distance, shortest_path
from repro.datasets import MultimediaConfig, multimedia_document
from repro.query import QueryProcessor


def main() -> None:
    store = monet_transform(
        multimedia_document(MultimediaConfig(seed=7, items=40))
    )
    engine = NearestConceptEngine(store)
    print(f"loaded {store}")

    print("\n== schema discovery: what paths exist under an item? ==")
    processor = QueryProcessor(store)
    result = processor.execute(
        "select distinct %T from multimedia/item/analysis/#/%T $o"
    )
    print("   tags below analysis:", sorted(r[0] for r in result.rows))

    print("\n== what connects 'histogram' and 'jpeg'? ==")
    concepts = engine.nearest_concepts("histogram", "jpeg", limit=5)
    for concept in concepts:
        print(
            f"   <{concept.tag}> oid={concept.oid} joins={concept.joins} "
            f"spread={concept.spread}"
        )
    if concepts:
        print("   → the tightest connection is the most specific concept.")

    print("\n== distance as a similarity signal (§4) ==")
    creator_hits = sorted(engine.term_hits("colorhist").oids())[:2]
    if len(creator_hits) == 2:
        hit1, hit2 = creator_hits
        d = distance(store, hit1, hit2)
        path = shortest_path(store, hit1, hit2)
        print(f"   two 'colorhist' detections are {d} edges apart")
        labels = [store.summary.label(store.pid_of(oid)) for oid in path]
        print(f"   shortest path: {' → '.join(labels)}")

    print("\n== distance-bounded meet (the §4 k-meet) ==")
    loose = engine.nearest_concepts("histogram", "wavelet")
    tight = engine.nearest_concepts("histogram", "wavelet", within=6)
    print(f"   unrestricted: {len(loose)} concepts")
    print(f"   within 6 joins: {len(tight)} concepts")
    print("   the bound trims concepts whose terms are only loosely related.")


if __name__ == "__main__":
    main()
