#!/usr/bin/env python3
"""The paper's running example, end to end (§1, §3.1, §3.2).

Replays the Figure 1 bibliography: the inflated regular-path-expression
answer, every worked meet example of §3.1, and the re-formulated meet
query that returns exactly one row.

Run:  python examples/bibliography_search.py
"""

from repro import NearestConceptEngine, monet_transform
from repro.baselines.pathexpr_baseline import witness_pair_answers
from repro.core import meet2_traced
from repro.core.distance import contexts
from repro.datasets import figure1_document
from repro.fulltext import SearchEngine
from repro.query import QueryProcessor


def main() -> None:
    store = monet_transform(figure1_document())
    engine = NearestConceptEngine(store)
    search = SearchEngine(store)

    print("== the intro's path-expression query (baseline) ==")
    print("terms: 'Bit' and '1999'")
    for row in witness_pair_answers(store, search, "Bit", "1999"):
        print(f"   <result> {row.tag} </result>  (oid {row.oid})")
    print("   … ancestor rows implied by the article pollute the answer.")

    print("\n== §3.1 worked examples ==")
    examples = [
        ("Ben", "Bit"),
        ("Bob", "Byte"),
        ("Bit", "1999"),
    ]
    for terma, termb in examples:
        (hita,) = sorted(engine.term_hits(terma).oids())[:1]
        hitb = sorted(engine.term_hits(termb).oids())[0]
        result = meet2_traced(store, hita, hitb)
        tag = store.summary.label(store.pid_of(result.oid))
        print(
            f"   meet2({terma!r}, {termb!r}) = oid {result.oid} <{tag}> "
            f"after {result.joins} joins"
        )

    print("\n== contexts (§3.1 interpretation bullets) ==")
    bit = sorted(engine.term_hits("Bit").oids())[0]
    year = sorted(engine.term_hits("1999").oids())[0]
    print("  ", contexts(store, bit, year).describe())

    print("\n== the §3.2 re-formulated meet query ==")
    processor = QueryProcessor(store)
    result = processor.execute(
        """
        select meet($o1, $o2)
        from   bibliography/#/%T1 $o1,
               bibliography/#/%T2 $o2
        where  $o1 contains 'Bit'
        and    $o2 contains '1999'
        """
    )
    print(result.render_answer(store))
    print("\n   → one row: Mr. Bit wrote an article in 1999.")

    print("\n== the same through the engine API ==")
    for concept in engine.nearest_concepts("Bit", "1999"):
        print(
            f"   <{concept.tag}> oid={concept.oid} joins={concept.joins} "
            f"| {engine.snippet(concept, 50)}"
        )


if __name__ == "__main__":
    main()
