#!/usr/bin/env python3
"""Tour of the SQL-with-paths query dialect (paper footnote 1).

Shows path patterns (`/`, `@`, `#`, `%V`, `*`), `contains` conditions,
enumeration vs. meet aggregation, `within` and `exclude`, plus plan
explanation.

Run:  python examples/query_language_demo.py
"""

from repro import monet_transform, parse_document
from repro.query import QueryProcessor

XML = """
<library>
  <branch city="Amsterdam">
    <holding shelf="A3">
      <book><title>Data on the Web</title><year>1999</year>
        <writer><name>Serge Abiteboul</name></writer></book>
    </holding>
    <holding shelf="B1">
      <book><title>A First Course in Database Systems</title><year>1997</year>
        <writer><name>Jeffrey Ullman</name></writer></book>
    </holding>
  </branch>
  <branch city="Utrecht">
    <holding shelf="Z9">
      <book><title>Principles of Databases</title><year>1999</year>
        <writer><name>Jeffrey Ullman</name></writer></book>
    </holding>
  </branch>
</library>
"""

QUERIES = [
    (
        "enumerate with a path variable",
        "select %T, tag($o) from library/branch/%T $o",
    ),
    (
        "schema wildcard # spans any depth",
        "select distinct path($o) from library/#/year $o",
    ),
    (
        "contains has offspring semantics",
        "select tag($o) from library/# $o where $o contains 'Ullman'",
    ),
    (
        "attribute steps with @",
        "select $o from library/branch/holding@shelf $o",
    ),
    (
        "meet() aggregation: what relates Ullman and 1999?",
        "select meet($a, $b) from library/# $a, library/# $b "
        "where $a contains 'Ullman' and $b contains '1999'",
    ),
    (
        "meet with exclusions and bounds",
        "select meet($a, $b) within 8 exclude root from library/# $a, "
        "library/# $b where $a contains 'Abiteboul' and $b contains '1997'",
    ),
    (
        "distance between two unique witnesses",
        "select distance($a, $b) from library/# $a, library/# $b "
        "where $a contains 'Abiteboul' and $b contains 'Web'",
    ),
]


def main() -> None:
    store = monet_transform(parse_document(XML))
    processor = QueryProcessor(store)

    for title, text in QUERIES:
        print(f"== {title} ==")
        print("   " + " ".join(text.split()))
        result = processor.execute(text)
        for row in result.rows[:6]:
            rendered = []
            for cell in row:
                if isinstance(cell, int) and cell in store:
                    tag = store.summary.label(store.pid_of(cell))
                    rendered.append(f"<{tag}> (oid {cell})")
                else:
                    rendered.append(str(cell))
            print("      " + ", ".join(rendered))
        if len(result.rows) > 6:
            print(f"      … {len(result.rows) - 6} more rows")
        if not result.rows:
            print("      (empty)")
        print()

    print("== explain: how a wildcard fans out over the schema ==")
    print(
        processor.explain(
            "select meet($a,$b) from library/# $a, library/#/%T $b "
            "where $a contains 'Ullman' and $b contains '1999'"
        )
    )


if __name__ == "__main__":
    main()
