#!/usr/bin/env python3
"""Tour of the implemented paper extensions (§4 outlook, §7 future work).

* thesaurus broadening — rescue a search that "returned too few
  answers";
* IDREF graph meets — nearest concepts across reference edges, with
  cycle-safe search;
* IR ranking — idf-weighted re-ranking of nearest concepts;
* keyword search as a meet special case (§6);
* store statistics — quantifying the "large, unknown or implicit"
  schema.

Run:  python examples/extensions_tour.py
"""

from repro import NearestConceptEngine, monet_transform, parse_document
from repro.core import (
    IRRanker,
    ReferenceIndex,
    graph_meet,
    keyword_search,
)
from repro.fulltext import Thesaurus
from repro.monet import collect_statistics

XML = """
<conference name="ICDE">
  <people>
    <researcher id="r1"><name>Albrecht Schmidt</name><affil>CWI</affil></researcher>
    <researcher id="r2"><name>Martin Kersten</name><affil>CWI</affil></researcher>
  </people>
  <program>
    <talk id="t1" speaker="r1">
      <title>Nearest Concept Queries</title><slot>Tuesday 9:00</slot>
    </talk>
    <talk id="t2" speaker="r2">
      <title>MIL Primitives for a Fragmented World</title><slot>Tuesday 10:00</slot>
    </talk>
  </program>
</conference>
"""


def main() -> None:
    store = monet_transform(parse_document(XML))

    print("== store statistics (the opaque-schema argument, §1) ==")
    print(collect_statistics(store).render(top=4))

    print("\n== thesaurus broadening (§4) ==")
    plain = NearestConceptEngine(store)
    print(
        "   plain search for 'Fragmented'+'Monet':",
        len(plain.nearest_concepts("Fragmented", "Monet",
                                   require_all_terms=True)),
        "concepts ('Monet' matches nothing)",
    )
    thesaurus = Thesaurus().add_synonyms("Monet", "MIL")
    broadened = NearestConceptEngine(store, thesaurus=thesaurus)
    for concept in broadened.nearest_concepts(
        "Fragmented", "Monet", require_all_terms=True
    ):
        print(
            f"   broadened via Monet≈MIL → <{concept.tag}> oid={concept.oid}"
        )

    print("\n== IDREF graph meets (§7 future work) ==")
    refs = ReferenceIndex(store, ref_attributes=("speaker",))
    print(f"   {refs.id_count} ids, {refs.edge_count} reference edges")
    engine = NearestConceptEngine(store)
    (schmidt_hit,) = engine.term_hits("Albrecht").oids()
    (title_hit,) = engine.term_hits("Nearest").oids()
    tree_only = graph_meet(store, schmidt_hit, title_hit)
    with_refs = graph_meet(store, schmidt_hit, title_hit, refs)
    assert tree_only is not None and with_refs is not None
    print(
        f"   tree-only route: distance {tree_only.distance} "
        f"(apex <{store.summary.label(store.pid_of(tree_only.oid))}>)"
    )
    print(
        f"   with references: distance {with_refs.distance} via "
        f"{with_refs.via_references} reference(s) — the talk↔speaker "
        "link shortcuts the tree"
    )

    print("\n== keyword search as a meet special case (§6) ==")
    for hit in keyword_search(engine, ["MIL", "10"], ["talk"]):
        print(f"   <{hit.tag}> oid={hit.oid} via terms {hit.terms}")

    print("\n== IR re-ranking (§4 outlook) ==")
    concepts = engine.nearest_concepts("Tuesday", "CWI", require_all_terms=False)
    ranker = IRRanker(engine.index)
    for scored in ranker.rank(concepts)[:3]:
        concept = scored.concept
        print(
            f"   score={scored.score:.3f} <{concept.tag}> "
            f"(idf {scored.idf_score:.2f}, tightness {scored.tightness:.2f})"
        )


if __name__ == "__main__":
    main()
