"""Unit tests for Tarjan's offline LCA."""

import pytest

from repro.baselines.tarjan import DisjointSet, tarjan_offline_lca
from repro.core.meet_pair import meet2
from repro.datamodel.errors import UnknownOIDError
from repro.datasets.figure1 import FIGURE1_OIDS as O
from repro.datasets.randomtree import random_document, random_oid_pairs
from repro.monet.transform import monet_transform


class TestDisjointSet:
    def test_make_find(self):
        dsu = DisjointSet()
        dsu.make_set(1)
        assert dsu.find(1) == 1

    def test_union(self):
        dsu = DisjointSet()
        for item in (1, 2, 3):
            dsu.make_set(item)
        dsu.union(1, 2)
        assert dsu.find(1) == dsu.find(2)
        assert dsu.find(3) not in (dsu.find(1),) or dsu.find(3) == dsu.find(3)
        dsu.union(2, 3)
        assert dsu.find(1) == dsu.find(3)

    def test_union_idempotent(self):
        dsu = DisjointSet()
        dsu.make_set(1)
        dsu.make_set(2)
        first = dsu.union(1, 2)
        assert dsu.union(1, 2) == first


class TestOffline:
    def test_batch_matches_meet2(self, figure1_store):
        queries = [
            (O["cdata_ben"], O["cdata_bit"]),
            (O["cdata_bit"], O["cdata_1999_a"]),
            (O["year1"], O["year2"]),
            (O["bibliography"], O["cdata_bob_byte"]),
            (O["year1"], O["year1"]),
        ]
        answers = tarjan_offline_lca(figure1_store, queries)
        for (oid1, oid2), answer in zip(queries, answers):
            assert answer == meet2(figure1_store, oid1, oid2)

    def test_empty_batch(self, figure1_store):
        assert tarjan_offline_lca(figure1_store, []) == []

    def test_duplicate_queries(self, figure1_store):
        queries = [(O["cdata_ben"], O["cdata_bit"])] * 3
        answers = tarjan_offline_lca(figure1_store, queries)
        assert answers == [O["author1"]] * 3

    def test_unknown_oid_rejected(self, figure1_store):
        with pytest.raises(UnknownOIDError):
            tarjan_offline_lca(figure1_store, [(1, 999)])

    def test_random_document_batch(self):
        store = monet_transform(random_document(31, nodes=250))
        queries = random_oid_pairs(store, 120, seed=31)
        answers = tarjan_offline_lca(store, queries)
        for (oid1, oid2), answer in zip(queries, answers):
            assert answer == meet2(store, oid1, oid2)
