"""Unit tests for the Goldman-et-al.-style proximity baseline."""

import pytest

from repro.baselines.proximity import find_near, find_near_terms
from repro.datasets.figure1 import FIGURE1_OIDS as O
from repro.fulltext.search import SearchEngine
from repro.query.parser import parse_query


@pytest.fixture(scope="module")
def search(request):
    return SearchEngine(request.getfixturevalue("figure1_store"))


def article_pattern():
    return parse_query(
        "select $o from bibliography/institute/article $o"
    ).bindings[0].pattern


class TestFindNear:
    def test_ranks_by_distance(self, figure1_store):
        hits = find_near(
            figure1_store,
            find_oids=[O["article1"], O["article2"]],
            near_oids=[O["cdata_bit"]],
        )
        assert [h.oid for h in hits] == [O["article1"], O["article2"]]
        assert hits[0].distance < hits[1].distance

    def test_best_near_witness_reported(self, figure1_store):
        hits = find_near(
            figure1_store,
            find_oids=[O["article1"]],
            near_oids=[O["cdata_1999_a"], O["cdata_1999_b"]],
        )
        assert hits[0].nearest == O["cdata_1999_a"]
        assert hits[0].distance == 2

    def test_max_distance_filter(self, figure1_store):
        hits = find_near(
            figure1_store,
            find_oids=[O["article1"], O["article2"]],
            near_oids=[O["cdata_bit"]],
            max_distance=3,
        )
        assert [h.oid for h in hits] == [O["article1"]]

    def test_empty_near_set(self, figure1_store):
        assert find_near(figure1_store, [O["article1"]], []) == []


class TestFindNearTerms:
    def test_user_names_the_result_type(self, figure1_store, search):
        """The baseline *requires* the result-type pattern the meet
        operator makes unnecessary."""
        hits = find_near_terms(
            figure1_store, search, article_pattern(), "Bit"
        )
        assert [h.oid for h in hits] == [O["article1"], O["article2"]]

    def test_agrees_with_meet_on_top_answer(self, figure1_store, search, figure1_engine):
        proximity_top = find_near_terms(
            figure1_store, search, article_pattern(), "Bit"
        )[0]
        meet_top = figure1_engine.nearest_concepts("Bit", "Hack")[0]
        assert proximity_top.oid == meet_top.oid == O["article1"]
