"""Unit tests for the Euler-tour + RMQ LCA index."""

import pytest

from repro.baselines.euler_rmq import EulerTourLCA
from repro.core.meet_pair import meet2, meet2_traced
from repro.datamodel.errors import UnknownOIDError
from repro.datasets.figure1 import FIGURE1_OIDS as O
from repro.datasets.randomtree import random_document, random_oid_pairs
from repro.monet.transform import monet_transform


@pytest.fixture(scope="module")
def index(request):
    return EulerTourLCA(request.getfixturevalue("figure1_store"))


class TestTour:
    def test_tour_length_is_2n_minus_1(self, index, figure1_store):
        assert index.tour_length == 2 * figure1_store.node_count - 1


class TestQueries:
    def test_known_cases(self, index):
        assert index.lca(O["cdata_ben"], O["cdata_bit"]) == O["author1"]
        assert index.lca(O["year1"], O["year1"]) == O["year1"]
        assert index.lca(O["cdata_ben"], O["cdata_bob_byte"]) == O["institute"]

    def test_agrees_with_meet2_everywhere(self, index, figure1_store):
        oids = list(figure1_store.iter_oids())
        for oid1 in oids:
            for oid2 in oids[::2]:
                assert index.lca(oid1, oid2) == meet2(figure1_store, oid1, oid2)

    def test_distance(self, index, figure1_store):
        for oid1, oid2 in [
            (O["cdata_ben"], O["cdata_bit"]),
            (O["article1"], O["article2"]),
            (O["year1"], O["year1"]),
        ]:
            assert index.distance(oid1, oid2) == meet2_traced(
                figure1_store, oid1, oid2
            ).joins

    def test_unknown_oid(self, index):
        with pytest.raises(UnknownOIDError):
            index.lca(1, 999)


class TestRandom:
    def test_random_documents(self):
        for seed in (21, 22):
            store = monet_transform(random_document(seed, nodes=300))
            index = EulerTourLCA(store)
            for oid1, oid2 in random_oid_pairs(store, 100, seed=seed):
                assert index.lca(oid1, oid2) == meet2(store, oid1, oid2)

    def test_single_node_document(self):
        from repro.datamodel.builder import DocumentBuilder

        store = monet_transform(DocumentBuilder("only").build())
        index = EulerTourLCA(store)
        assert index.lca(0, 0) == 0
        assert index.tour_length == 1
