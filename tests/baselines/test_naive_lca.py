"""Unit tests for the naive LCA baselines (oracles for meet₂)."""

import pytest

from repro.baselines.naive_lca import lockstep_lca, naive_lca, naive_lca_pairs
from repro.core.meet_pair import meet2
from repro.datasets.figure1 import FIGURE1_OIDS as O
from repro.datasets.randomtree import random_document, random_oid_pairs
from repro.monet.transform import monet_transform


class TestNaive:
    def test_known_cases(self, figure1_store):
        assert naive_lca(figure1_store, O["cdata_ben"], O["cdata_bit"]) == (
            O["author1"]
        )
        assert naive_lca(figure1_store, O["year1"], O["year1"]) == O["year1"]
        assert naive_lca(figure1_store, O["article1"], O["cdata_ben"]) == (
            O["article1"]
        )

    def test_agrees_with_meet2_everywhere(self, figure1_store):
        oids = list(figure1_store.iter_oids())
        for oid1 in oids:
            for oid2 in oids[::2]:
                assert naive_lca(figure1_store, oid1, oid2) == meet2(
                    figure1_store, oid1, oid2
                )


class TestLockstep:
    def test_agrees_with_naive(self, figure1_store):
        oids = list(figure1_store.iter_oids())
        for oid1 in oids[::2]:
            for oid2 in oids[::3]:
                assert lockstep_lca(figure1_store, oid1, oid2) == naive_lca(
                    figure1_store, oid1, oid2
                )

    def test_random_documents(self):
        store = monet_transform(random_document(5, nodes=200))
        for oid1, oid2 in random_oid_pairs(store, 80, seed=5):
            assert lockstep_lca(store, oid1, oid2) == naive_lca(store, oid1, oid2)


class TestPairs:
    def test_cross_product_cardinality(self, figure1_store):
        """Without minimality bookkeeping the result is |O₁|×|O₂| —
        the combinatorial explosion Fig. 4 avoids."""
        left = [O["cdata_how_to_hack"], O["cdata_hacking_rsi"]]
        right = [O["cdata_1999_a"], O["cdata_1999_b"]]
        results = naive_lca_pairs(figure1_store, left, right)
        assert len(results) == 4

    def test_pair_results_are_correct_lcas(self, figure1_store):
        left = [O["cdata_bit"]]
        right = [O["cdata_1999_a"], O["cdata_1999_b"]]
        for lca, oid1, oid2 in naive_lca_pairs(figure1_store, left, right):
            assert lca == meet2(figure1_store, oid1, oid2)

    def test_empty_sides(self, figure1_store):
        assert naive_lca_pairs(figure1_store, [], [1]) == []
        assert naive_lca_pairs(figure1_store, [1], []) == []
