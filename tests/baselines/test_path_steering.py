"""Unit tests for the raw-path-comparison meet₂ variant (Ablation D)."""

from repro.baselines.path_steering import meet2_pathcmp
from repro.core.meet_pair import meet2
from repro.datasets.randomtree import random_document, random_oid_pairs
from repro.monet.transform import monet_transform


class TestEquivalence:
    def test_figure1_all_pairs(self, figure1_store):
        oids = list(figure1_store.iter_oids())
        for oid1 in oids:
            for oid2 in oids[::2]:
                assert meet2_pathcmp(figure1_store, oid1, oid2) == meet2(
                    figure1_store, oid1, oid2
                )

    def test_random_documents(self):
        for seed in (51, 52):
            store = monet_transform(random_document(seed, nodes=200))
            for oid1, oid2 in random_oid_pairs(store, 80, seed=seed):
                assert meet2_pathcmp(store, oid1, oid2) == meet2(
                    store, oid1, oid2
                )

    def test_identity(self, figure1_store):
        assert meet2_pathcmp(figure1_store, 5, 5) == 5
