"""Unit tests for the intro's path-expression baseline (Table I)."""

import pytest

from repro.baselines.pathexpr_baseline import (
    containment_answers,
    witness_pair_answers,
)
from repro.datasets.figure1 import FIGURE1_OIDS as O
from repro.fulltext.search import SearchEngine
from repro.query.parser import parse_query


@pytest.fixture(scope="module")
def search(request):
    return SearchEngine(request.getfixturevalue("figure1_store"))


class TestContainmentAnswers:
    def test_bit_and_1999(self, figure1_store, search):
        """Nodes containing both terms: article1, institute, root —
        the ancestor-implied redundancy of the intro's answer."""
        answers = containment_answers(figure1_store, search, ["Bit", "1999"])
        assert [a.tag for a in answers] == ["bibliography", "institute", "article"]
        assert [a.oid for a in answers] == [
            O["bibliography"],
            O["institute"],
            O["article1"],
        ]

    def test_witnesses_recorded(self, figure1_store, search):
        answers = containment_answers(figure1_store, search, ["Bit", "1999"])
        article = answers[-1]
        assert O["cdata_bit"] in article.witnesses
        assert O["cdata_1999_a"] in article.witnesses

    def test_pattern_restriction(self, figure1_store, search):
        query = parse_query("select $o from bibliography/#/%T $o")
        pattern = query.bindings[0].pattern
        answers = containment_answers(
            figure1_store, search, ["Bit", "1999"], pattern=pattern
        )
        # the pattern needs depth ≥ 2: the root drops out
        assert [a.tag for a in answers] == ["institute", "article"]

    def test_empty_terms(self, figure1_store, search):
        assert containment_answers(figure1_store, search, []) == []

    def test_superset_of_meet_answer(self, figure1_store, search, figure1_engine):
        """The baseline answer always contains every meet answer."""
        baseline = {a.oid for a in containment_answers(figure1_store, search, ["Bit", "1999"])}
        meets = {c.oid for c in figure1_engine.nearest_concepts("Bit", "1999")}
        assert meets <= baseline
        assert len(baseline) > len(meets)


class TestWitnessPairAnswers:
    def test_row_bag_shape(self, figure1_store, search):
        answers = witness_pair_answers(figure1_store, search, "Bit", "1999")
        tags = sorted(a.tag for a in answers)
        # pair (o8,o12): article+institute+bibliography;
        # pair (o8,o17): institute+bibliography  → 5 rows
        assert tags == [
            "article",
            "bibliography",
            "bibliography",
            "institute",
            "institute",
        ]

    def test_rows_carry_witness_pairs(self, figure1_store, search):
        answers = witness_pair_answers(figure1_store, search, "Bit", "1999")
        for answer in answers:
            oid1, oid2 = answer.witnesses
            assert figure1_store.is_ancestor(answer.oid, oid1)
            assert figure1_store.is_ancestor(answer.oid, oid2)

    def test_explosion_grows_with_hits(self, figure1_store, search):
        few = witness_pair_answers(figure1_store, search, "Ben", "Bit")
        many = witness_pair_answers(figure1_store, search, "Hack", "1999")
        assert len(many) >= len(few)
