"""The batch LCA kernels against their per-pair python oracles.

Property tests: on arbitrary generated trees, ``LcaKernels.lca_many``
must agree with the scalar Euler-RMQ kernel pair by pair, and the
vectorized auxiliary tree must reproduce the stack-walk construction
of :meth:`LcaIndex.auxiliary_tree_arrays` exactly (same candidate
order, same parent positions).  Unit tests cover the tier probe, the
env kill-switch, the unknown-OID contract and the pointer-doubling
depth kernel.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.core.lca_index import LcaIndex
from repro.datamodel.errors import UnknownOIDError
from repro.datasets.randomtree import random_document
from repro.monet.transform import monet_transform

from ..property.strategies import stores

np = pytest.importorskip("numpy")

from repro.kernels.lca import LcaKernels, get_kernels, tree_depths  # noqa: E402


@st.composite
def store_and_pairs(draw):
    store = draw(stores(max_nodes=40, with_text=False))
    low = store.first_oid
    high = low + store.node_count - 1
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=low, max_value=high),
                st.integers(min_value=low, max_value=high),
            ),
            min_size=0,
            max_size=50,
        )
    )
    return store, pairs


class TestLcaMany:
    @settings(max_examples=60, deadline=None)
    @given(store_and_pairs())
    def test_matches_scalar_kernel(self, case):
        store, pairs = case
        index = LcaIndex(store)
        batch = LcaKernels(index)
        if not pairs:
            assert batch.lca_pairs(pairs) == []
            return
        table = np.asarray(pairs, dtype=np.int64)
        meets, distances = batch.lca_many(table[:, 0], table[:, 1])
        for (oid1, oid2), meet, dist in zip(
            pairs, meets.tolist(), distances.tolist()
        ):
            assert meet == index.lca(oid1, oid2)
            assert dist == index.distance(oid1, oid2)

    @settings(max_examples=40, deadline=None)
    @given(stores(max_nodes=40, with_text=False), st.integers(0, 2**32))
    def test_auxiliary_tree_matches_stack_walk(self, store, seed):
        rng = random.Random(seed)
        low = store.first_oid
        high = low + store.node_count - 1
        oids = [rng.randint(low, high) for _ in range(rng.randint(1, 25))]
        index = LcaIndex(store)
        batch = LcaKernels(index)
        order, _firsts, parent_index = batch.auxiliary_tree(
            np.asarray(oids, dtype=np.int64)
        )
        expected_order, expected_parents = index.auxiliary_tree_arrays(oids)
        assert order.tolist() == expected_order
        assert parent_index.tolist() == expected_parents

    def test_unknown_oids_raise(self):
        store = monet_transform(random_document(3, nodes=50, max_children=3))
        batch = LcaKernels(LcaIndex(store))
        good = store.first_oid
        for bad in (store.first_oid - 1, store.first_oid + store.node_count):
            with pytest.raises(UnknownOIDError):
                batch.lca_many(
                    np.asarray([good, bad]), np.asarray([good, good])
                )

    def test_index_routes_through_kernels_and_memoizes(self):
        store = monet_transform(random_document(5, nodes=120, max_children=4))
        index = LcaIndex(store)
        pairs = [
            (store.first_oid + 3, store.first_oid + 90),
            (store.first_oid, store.first_oid),
        ]
        assert index.lca_many(pairs) == [
            index.lca(a, b) for a, b in pairs
        ]
        assert get_kernels(index) is get_kernels(index)


class TestTreeDepths:
    def test_chain_and_star(self):
        chain = np.asarray([-1, 0, 1, 2, 3], dtype=np.int64)
        assert tree_depths(chain).tolist() == [0, 1, 2, 3, 4]
        star = np.asarray([-1, 0, 0, 0], dtype=np.int64)
        assert tree_depths(star).tolist() == [0, 1, 1, 1]
        forest = np.asarray([-1, -1, 0, 1], dtype=np.int64)
        assert tree_depths(forest).tolist() == [0, 0, 1, 1]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=60))
    def test_random_parent_vectors(self, raw):
        # Node i attaches to a previous node or is a root: always a
        # valid forest, like the document strategy's parent vectors.
        parents = np.asarray(
            [-1]
            + [
                value % (index + 2) - 1
                for index, value in enumerate(raw[1:])
            ],
            dtype=np.int64,
        )
        depth = tree_depths(parents)
        for position, parent in enumerate(parents.tolist()):
            if parent < 0:
                assert depth[position] == 0
            else:
                assert depth[position] == depth[parent] + 1


class TestTierProbe:
    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "python")
        assert kernels.available() is False
        assert kernels.tier() == "python"
        assert kernels.active_tier("vector") == "python"

    def test_tier_when_importable(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert kernels.available() is True
        assert kernels.tier() == "vector"
        assert kernels.numpy() is np
        assert kernels.active_tier("vector") == "vector"
        assert kernels.active_tier("indexed") == "python"
        assert kernels.active_tier("steered") == "python"
        assert kernels.active_tier(None) == "python"

    def test_native_stub(self):
        from repro.kernels import native

        assert native.load() is None
        with pytest.raises(NotImplementedError):
            native.build()
