"""Unit coverage for the postings algebra and roll-up kernels.

The full-text kernels are exercised against the pure-python paths
(forced via the ``REPRO_KERNELS`` kill-switch) on identical inputs;
the roll-up kernels are pinned to the python Fig. 4/5 DP via the
backend-level differential in ``test_vector_differential``, so here
they only need shape/ordering contracts on handcrafted columns.
"""

import random
from array import array

import pytest

from repro.datasets import multimedia_document, MultimediaConfig
from repro.datasets.textpool import TECH_NOUNS
from repro.fulltext.index import clear_fulltext_index_cache
from repro.fulltext.search import SearchEngine
from repro.monet.transform import monet_transform

np = pytest.importorskip("numpy")

from repro.kernels.postings import (  # noqa: E402
    group_boundaries,
    intersect_columns,
    union_columns,
)


def _cols(pairs):
    pids = np.asarray([pid for pid, _ in pairs], dtype=np.int64)
    oids = np.asarray([oid for _, oid in pairs], dtype=np.int64)
    return pids, oids


class TestPostingsAlgebra:
    def test_intersection_sorted_by_pid_then_oid(self):
        a = _cols([(2, 10), (1, 11), (2, 12), (3, 13)])
        b = _cols([(2, 12), (3, 13), (2, 10), (9, 99)])
        pids, oids = intersect_columns([a, b])
        assert list(zip(pids.tolist(), oids.tolist())) == [
            (2, 10),
            (2, 12),
            (3, 13),
        ]

    def test_intersection_empty(self):
        a = _cols([(1, 10)])
        b = _cols([(2, 20)])
        pids, oids = intersect_columns([a, b])
        assert len(pids) == 0 and len(oids) == 0

    def test_union_keeps_first_seen_order(self):
        a = _cols([(5, 50), (1, 10)])
        b = _cols([(1, 10), (7, 70)])
        pids, oids = union_columns([a, b])
        assert list(zip(pids.tolist(), oids.tolist())) == [
            (5, 50),
            (1, 10),
            (7, 70),
        ]

    def test_group_boundaries(self):
        sorted_pids = np.asarray([1, 1, 4, 4, 4, 9], dtype=np.int64)
        uniques, starts = group_boundaries(sorted_pids)
        assert uniques.tolist() == [1, 4, 9]
        assert starts.tolist() == [0, 2, 5]

    def test_randomized_against_python_sets(self):
        rng = random.Random(3)
        for _ in range(50):
            columns = []
            pools = []
            for _ in range(rng.randint(2, 4)):
                pairs = sorted(
                    {
                        (rng.randint(0, 6), rng.randint(0, 40))
                        for _ in range(rng.randint(0, 25))
                    },
                    key=lambda pair: rng.random(),
                )
                pools.append(set(pairs))
                columns.append(_cols(pairs))
            pids, oids = intersect_columns(columns)
            expected = set.intersection(*pools) if pools else set()
            assert set(zip(pids.tolist(), oids.tolist())) == expected
            pids, oids = union_columns(columns)
            assert set(zip(pids.tolist(), oids.tolist())) == set.union(
                *pools
            )


class TestFulltextParity:
    """Vector and python tiers answer identically on a real index."""

    @pytest.fixture(scope="class")
    def store(self):
        return monet_transform(
            multimedia_document(MultimediaConfig(items=40))
        )

    def _snapshot(self, store):
        engine = SearchEngine(store)
        index = engine.index
        words = list(TECH_NOUNS)[:10]
        probes = {}
        for word in words:
            hits = index.search(word)
            probes[("token", word)] = (
                list(hits.oids()),
                [(p.pid, p.oid) for p in hits.postings],
                sorted((pid, list(g)) for pid, g in hits.by_pid().items()),
                list(hits.oid_column()),
            )
        for word in words[:5]:
            hits = index.search_prefix(word[:3])
            probes[("prefix", word[:3])] = [
                (p.pid, p.oid) for p in hits.postings
            ]
        for pair in [tuple(words[:2]), tuple(words[2:4]), tuple(words[:3])]:
            probes[("any", pair)] = [
                (p.pid, p.oid) for p in index.search_any(pair).postings
            ]
            probes[("conj", pair)] = [
                (p.pid, p.oid)
                for p in index.search_conjunctive(pair).postings
            ]
        return probes

    def test_tiers_agree(self, store, monkeypatch):
        clear_fulltext_index_cache()
        vector = self._snapshot(store)
        monkeypatch.setenv("REPRO_KERNELS", "python")
        clear_fulltext_index_cache()
        python = self._snapshot(store)
        assert vector.keys() == python.keys()
        for probe in vector:
            assert vector[probe] == python[probe], probe

    def test_oid_column_is_plain_array(self, store):
        """Kernel outputs must not leak np.int64 into OID validation."""
        clear_fulltext_index_cache()
        index = SearchEngine(store).index
        word = list(TECH_NOUNS)[0]
        column = index.search(word).oid_column()
        assert isinstance(column, array)
        merged = index.search_any(list(TECH_NOUNS)[:2]).oid_column()
        for oid in list(merged)[:5]:
            assert type(oid) is int
        conj = index.search_conjunctive(list(TECH_NOUNS)[:2])
        for posting in conj.postings[:5]:
            assert type(posting.oid) is int
