"""Vector backend differential: byte-identical to the python backends.

The acceptance bar of the kernel tier is *bit-for-bit equivalence*:
across every bundled dataset, monolithic and 2-shard serving, and a
seeded stream of live put/delete/replace mutations, the ``vector``
backend must return exactly the answers — and exactly the ranking
keys — of the ``indexed`` and ``steered`` backends.  A final test
pins the zero-rebuild property: serving a snapshot bundle on the
vector backend performs no LCA index build (the kernels bind views
over the deserialized columns).
"""

import pytest

from repro.core.backends import resolve_backend
from repro.core.engine import NearestConceptEngine
from repro.core.lca_index import (
    clear_lca_index_cache,
    lca_index_cache_info,
)

from ..write.harness import (
    DATASETS,
    NEAREST_OPTIONS,
    MutationFuzzer,
    apply_step,
    live_nearest,
    live_query,
    live_search,
    open_live,
    write_source,
)

np = pytest.importorskip("numpy")

from repro import kernels  # noqa: E402

# The suite proves the *vector tier* equivalent to the python DPs;
# with kernels unavailable (no NumPy / REPRO_KERNELS kill-switch) the
# backend silently degrades to indexed and there is nothing to prove.
pytestmark = pytest.mark.skipif(
    not kernels.available(), reason="NumPy kernels disabled"
)

REFERENCE_BACKENDS = ("steered", "indexed")
SHARD_MODES = (None, 2)


def _assert_same_surfaces(vector_db, reference_db, dataset, context):
    spec = DATASETS[dataset]
    for terms in spec["terms"]:
        for options in NEAREST_OPTIONS:
            expected = live_nearest(reference_db, terms, options)
            actual = live_nearest(vector_db, terms, options)
            assert actual == expected, (
                f"{context}: nearest({terms}, {options}) diverged from "
                f"{reference_db.backend_name}"
            )
        for term in terms:
            assert live_search(vector_db, term) == live_search(
                reference_db, term
            ), f"{context}: search({term!r}) diverged"
    for text in spec["queries"]:
        assert live_query(vector_db, text) == live_query(
            reference_db, text
        ), f"{context}: query {text!r} diverged"


@pytest.mark.parametrize("dataset", list(DATASETS))
@pytest.mark.parametrize("shards", SHARD_MODES, ids=lambda s: f"shards={s}")
def test_vector_matches_references_under_mutations(tmp_path, dataset, shards):
    source, model = write_source(tmp_path, dataset)
    vector_db = open_live(source, backend="vector", shards=shards)
    references = {
        name: open_live(source, backend=name, shards=shards)
        for name in REFERENCE_BACKENDS
    }
    try:
        assert vector_db.backend_name == "vector"
        context = f"{dataset}/shards={shards}"
        for name, reference_db in references.items():
            _assert_same_surfaces(
                vector_db, reference_db, dataset, f"{context}/baseline/{name}"
            )
        fuzzer = MutationFuzzer(model, dataset, seed=23)
        for index in range(6):
            step = fuzzer.step()
            # The model tracks mutations once; every database applies
            # the same step so all stay bit-for-bit comparable.
            apply_step(vector_db, model, step)
            for reference_db in references.values():
                op, name, xml = step
                getattr(reference_db, op)(*(n for n in (name, xml) if n))
            for name, reference_db in references.items():
                _assert_same_surfaces(
                    vector_db,
                    reference_db,
                    dataset,
                    f"{context}/step{index}:{step[0]}/{name}",
                )
    finally:
        vector_db.close()
        for reference_db in references.values():
            reference_db.close()


@pytest.mark.parametrize("dataset", list(DATASETS))
def test_ranking_keys_identical(tmp_path, dataset):
    """Not just the ranked answers: the §4 ranking keys themselves."""
    source, model = write_source(tmp_path, dataset)
    store = model.oracle_store()
    engines = {
        name: NearestConceptEngine(store, backend=name)
        for name in ("vector",) + REFERENCE_BACKENDS
    }
    assert engines["vector"].backend.name == "vector"
    for terms in DATASETS[dataset]["terms"]:
        keyed = {}
        for name, engine in engines.items():
            tagged = [
                (term, oid)
                for term in terms
                for oid in engine.term_hits(term).oids()
            ]
            results = engine.backend.meet_tagged(tagged)
            keyed[name] = sorted(
                key for key, _result in engine._rank_keys(results)
            )
        for name in REFERENCE_BACKENDS:
            assert keyed["vector"] == keyed[name], (
                f"{dataset}: ranking keys diverged from {name} on {terms}"
            )


@pytest.mark.parametrize("dataset", list(DATASETS))
def test_batch_rank_keys_match_engine(tmp_path, dataset):
    """The TaggedBatch's precomputed keys == the engine's python keys.

    ``meet_term_hits`` returns a lazy batch whose ``rank_keys`` were
    computed array-wise (summary depths, live spreads, reduceat
    joins); they must equal :meth:`NearestConceptEngine._rank_keys`
    element-for-element and index-aligned, and each lazily
    materialized element must equal the eager ``meet_tagged`` output.
    """
    source, model = write_source(tmp_path, dataset)
    store = model.oracle_store()
    engine = NearestConceptEngine(store, backend="vector")
    assert engine.backend.name == "vector"
    for terms in DATASETS[dataset]["terms"]:
        batch = engine.backend.meet_term_hits(
            (term, engine.term_hits(term)) for term in dict.fromkeys(terms)
        )
        results = list(batch)
        assert batch.rank_keys == [
            key for key, _result in engine._rank_keys(results)
        ]
        tagged = [
            (term, oid)
            for term in dict.fromkeys(terms)
            for oid in engine.term_hits(term).oids()
        ]
        assert results == engine.backend.meet_tagged(tagged)


def test_meet_surfaces_identical(tmp_path):
    """meet_many / meet_sets / distance parity on a real store."""
    import random
    from collections import defaultdict

    source, model = write_source(tmp_path, "dblp")
    store = model.oracle_store()
    vector = resolve_backend(store, "vector")
    indexed = resolve_backend(store, "indexed")
    assert vector.name == "vector"

    rng = random.Random(11)
    low = store.first_oid
    oids = list(range(low, low + store.node_count))
    pairs = [(rng.choice(oids), rng.choice(oids)) for _ in range(400)]
    assert vector.meet_many(pairs) == indexed.meet_many(pairs)
    for oid1, oid2 in pairs[:100]:
        assert vector.distance(oid1, oid2) == indexed.distance(oid1, oid2)

    by_pid = defaultdict(list)
    for oid in oids:
        by_pid[store.pid_of(oid)].append(oid)
    groups = sorted(
        (group for group in by_pid.values() if len(group) >= 4), key=len
    )[-3:]
    for left_group in groups:
        for right_group in groups:
            left = rng.sample(left_group, min(12, len(left_group)))
            right = rng.sample(right_group, min(12, len(right_group)))
            assert vector.meet_sets(left, right) == indexed.meet_sets(
                left, right
            )


def test_snapshot_serving_stays_rebuild_free(tmp_path):
    """The vector tier binds views over the bundle's seeded index."""
    from repro.api import Database
    from repro.datasets import figure1_document
    from repro.monet.transform import monet_transform
    from repro.snapshot import Catalog

    catalog = Catalog(tmp_path / "catalog")
    catalog.build("figure1", monet_transform(figure1_document()))

    clear_lca_index_cache()
    db = Database.open("figure1", catalog=catalog.root)
    try:
        assert db.backend_name == "vector"
        db.warm_up()
        for _ in range(3):
            envelope = db.nearest("Bit", "1999")
            assert envelope.answers
        assert lca_index_cache_info().builds == 0
    finally:
        db.close()
