"""Shared fixtures: stores and engines built once per test session."""

from __future__ import annotations

import pytest

from repro.core import NearestConceptEngine
from repro.datasets import (
    DblpConfig,
    MultimediaConfig,
    dblp_document,
    figure1_document,
    multimedia_with_markers,
    random_document,
)
from repro.monet import monet_transform


@pytest.fixture(scope="session")
def figure1_doc():
    return figure1_document()


@pytest.fixture(scope="session")
def figure1_store(figure1_doc):
    store = monet_transform(figure1_doc)
    store.validate()
    return store


@pytest.fixture(scope="session")
def figure1_engine(figure1_store):
    return NearestConceptEngine(figure1_store)


@pytest.fixture(scope="session")
def dblp_small_config():
    return DblpConfig(papers_per_proceedings=5, articles_per_year=2)


@pytest.fixture(scope="session")
def dblp_store(dblp_small_config):
    store = monet_transform(dblp_document(dblp_small_config))
    store.validate()
    return store


@pytest.fixture(scope="session")
def dblp_engine(dblp_store):
    # The §5 case study: Monet's `contains` was case-sensitive.
    return NearestConceptEngine(dblp_store, case_sensitive=True)


@pytest.fixture(scope="session")
def multimedia_planted():
    doc, planted = multimedia_with_markers(
        list(range(0, 21)), MultimediaConfig(items=30)
    )
    return monet_transform(doc), planted


@pytest.fixture(scope="session")
def random_store():
    return monet_transform(random_document(seed=7, nodes=400))
