"""Cluster executor: replicas, failover, circuit breaker, health."""

import time

import pytest

from repro.datasets import DblpConfig, dblp_document
from repro.exec import (
    ClusterExecutor,
    DeadlineExceededError,
    ExecutorError,
    Deadline,
    ReplicaSpec,
    SerialExecutor,
    ShardService,
    ShardedCollection,
    compute_shard_plan,
    deadline_scope,
    slice_store,
)
from repro.exec.remote import RemoteOpError, ShardWorkerServer
from repro.monet.transform import monet_transform

SHARDS = 2


@pytest.fixture(scope="module")
def store():
    return monet_transform(
        dblp_document(DblpConfig(papers_per_proceedings=3, articles_per_year=2))
    )


@pytest.fixture(scope="module")
def fabric(store):
    plan = compute_shard_plan(store, SHARDS)
    slices = slice_store(store, plan)
    services = {
        index: ShardService(shard, shard_id=index, backend="indexed")
        for index, shard in enumerate(slices)
    }
    return plan, services


def _worker(services):
    return ShardWorkerServer(services, host="127.0.0.1", port=0).start()


def _cluster(addresses_per_shard, **kw):
    kw.setdefault("connect_timeout", 1.0)
    kw.setdefault("attempt_timeout", 10.0)
    kw.setdefault("backoff_base", 0.005)
    kw.setdefault("backoff_cap", 0.02)
    kw.setdefault("seed", 7)
    return ClusterExecutor(
        [
            [ReplicaSpec(address) for address in group]
            for group in addresses_per_shard
        ],
        **kw,
    )


def test_cluster_answers_match_serial(store, fabric):
    plan, services = fabric
    worker = _worker(services)
    executor = _cluster([[worker.address]] * SHARDS)
    try:
        serial = ShardedCollection(
            plan,
            store.summary,
            SerialExecutor([services[i] for i in range(SHARDS)]),
            backend_name="indexed",
            generations=[0] * SHARDS,
        )
        remote = ShardedCollection(
            plan,
            store.summary,
            executor,
            backend_name="indexed",
            generations=[0] * SHARDS,
        )
        for terms in [("ICDE", "1999"), ("VLDB", "1994")]:
            assert remote.nearest_concepts(*terms) == (
                serial.nearest_concepts(*terms)
            )
    finally:
        executor.close()
        worker.shutdown()


def test_failover_to_surviving_replica(fabric):
    _plan, services = fabric
    doomed = _worker(services)
    survivor = _worker(services)
    executor = _cluster(
        [[doomed.address, survivor.address]] * SHARDS,
    )
    try:
        assert [r["shard"] for r in executor.broadcast("ping", {})] == [0, 1]
        doomed.shutdown()
        # Every subsequent request must still succeed (no healthy-replica
        # window): the failover loop retries the survivor in-line.
        for _ in range(6):
            responses = executor.broadcast("ping", {})
            assert [r["shard"] for r in responses] == [0, 1]
        assert executor.stats()["failovers"] >= 1
    finally:
        executor.close()
        survivor.shutdown()


def test_all_replicas_down_is_typed_executor_error(fabric):
    _plan, services = fabric
    worker = _worker(services)
    executor = _cluster([[worker.address]] * SHARDS)
    try:
        executor.broadcast("ping", {})
        worker.shutdown()
        with pytest.raises(ExecutorError) as excinfo:
            for _ in range(4):  # enough attempts to open every circuit
                executor.broadcast("ping", {})
        assert excinfo.value.code == "shard_unavailable"
        assert excinfo.value.retryable
    finally:
        executor.close()


def test_remote_op_error_does_not_fail_over(fabric):
    _plan, services = fabric
    worker = _worker(services)
    executor = _cluster([[worker.address, worker.address]] * SHARDS)
    try:
        with pytest.raises(RemoteOpError):
            executor.scatter([(0, "no_such_op", {})])
        # An application error is not a replica fault: nothing failed
        # over, no circuit moved.
        assert executor.stats()["failovers"] == 0
        assert executor.health()["status"] == "ok"
    finally:
        executor.close()
        worker.shutdown()


def test_unhosted_shard_is_remote_op_error(fabric):
    # A worker hosting only shard 0 configured as shard 1's replica: a
    # deployment mistake that must surface as a typed application
    # error, not a retry storm.
    _plan, services = fabric
    worker = _worker({0: services[0]})
    executor = _cluster([[worker.address], [worker.address]])
    try:
        with pytest.raises(RemoteOpError, match="does not host shard"):
            executor.scatter([(1, "ping", {})])
        assert executor.stats()["failovers"] == 0
    finally:
        executor.close()
        worker.shutdown()


def test_expired_deadline_aborts_failover(fabric):
    _plan, services = fabric
    worker = _worker(services)
    executor = _cluster([[worker.address]] * SHARDS)
    try:
        with deadline_scope(Deadline(expires_at=0.0)):
            with pytest.raises(DeadlineExceededError):
                executor.broadcast("ping", {})
    finally:
        executor.close()
        worker.shutdown()


def test_health_degrades_on_last_replica(fabric):
    _plan, services = fabric
    doomed = _worker(services)
    survivor = _worker(services)
    executor = _cluster(
        [[doomed.address, survivor.address]] * SHARDS,
        failure_threshold=1,
        probe_interval=0.05,
    )
    try:
        assert executor.health()["status"] == "ok"
        doomed.shutdown()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            executor.broadcast("ping", {})
            health = executor.health()
            if health["status"] == "degraded":
                break
            time.sleep(0.05)
        health = executor.health()
        assert health["status"] == "degraded"
        shard0 = health["shards"][0]
        assert shard0["healthy_replicas"] == 1
        states = {row["state"] for row in shard0["replicas"]}
        assert "open" in states or "evicted" in states
    finally:
        executor.close()
        survivor.shutdown()


def test_circuit_reopens_after_recovery(fabric):
    _plan, services = fabric
    flaky = _worker(services)
    backup = _worker(services)
    address = flaky.address
    executor = _cluster(
        [[address, backup.address]] * SHARDS,
        failure_threshold=1,
        probe_interval=0.05,
        open_seconds=0.1,
    )
    try:
        executor.broadcast("ping", {})
        flaky.shutdown()
        # Drive failures until the circuit opens.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            executor.broadcast("ping", {})
            if executor.health()["status"] == "degraded":
                break
            time.sleep(0.02)
        assert executor.health()["status"] == "degraded"
        # Bring a worker back on the *same* address: the prober must
        # close the circuit again without any caller intervention.
        revived = ShardWorkerServer(
            services, host=address[0], port=address[1]
        ).start()
        try:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if executor.health()["status"] == "ok":
                    break
                time.sleep(0.05)
            assert executor.health()["status"] == "ok"
        finally:
            revived.shutdown()
    finally:
        executor.close()
        backup.shutdown()


def test_evicts_managed_replica_out_of_respawn_budget(fabric):
    _plan, services = fabric
    survivor = _worker(services)

    class _DeadOnArrival:
        """A spawned 'process' that is already dead."""

        def __init__(self, address):
            self.address = address
            self.pid = -1
            self.alive = False

        def kill(self):  # pragma: no cover - never alive
            pass

        def terminate(self):
            pass

    spawn_count = 0

    def hopeless_spawn():
        nonlocal spawn_count
        spawn_count += 1
        return _DeadOnArrival(("127.0.0.1", 1))

    executor = ClusterExecutor(
        [
            [
                ReplicaSpec(spawn=hopeless_spawn),
                ReplicaSpec(survivor.address),
            ],
        ],
        connect_timeout=0.2,
        probe_interval=0.02,
        max_respawns=2,
        seed=3,
    )
    try:
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            rows = executor.health()["shards"][0]["replicas"]
            if any(row["state"] == "evicted" for row in rows):
                break
            time.sleep(0.05)
        rows = executor.health()["shards"][0]["replicas"]
        assert any(row["state"] == "evicted" for row in rows)
        # Respawn attempts were bounded by the budget (initial spawn
        # excluded), and the shard still serves from the survivor.
        assert spawn_count <= 4
        assert executor.scatter([(0, "ping", {})])[0]["shard"] == 0
    finally:
        executor.close()
        survivor.shutdown()
