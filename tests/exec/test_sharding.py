"""Structural invariants of the shard plan and the store slicer."""

import pytest

from repro.datasets import DblpConfig, dblp_document, figure1_document
from repro.datasets.randomtree import random_document
from repro.exec import ShardPlan, ShardingError, compute_shard_plan, slice_store
from repro.monet.transform import monet_transform


@pytest.fixture(scope="module")
def dblp_store():
    return monet_transform(
        dblp_document(DblpConfig(papers_per_proceedings=3, articles_per_year=2))
    )


def test_plan_tiles_the_oid_range(dblp_store):
    plan = compute_shard_plan(dblp_store, 4)
    assert plan.shard_count == 4
    assert plan.starts[0] == dblp_store.root_oid + 1
    assert plan.ends[-1] == dblp_store.last_oid + 1
    for previous_end, start in zip(plan.ends, plan.starts[1:]):
        assert start == previous_end
    assert plan.node_count == dblp_store.node_count


def test_plan_balances_shards(dblp_store):
    plan = compute_shard_plan(dblp_store, 4)
    sizes = [end - start for start, end in zip(plan.starts, plan.ends)]
    assert sum(sizes) == dblp_store.node_count - 1
    # Balanced within a factor: no shard dominates the run.
    assert max(sizes) <= 2 * (sum(sizes) / len(sizes))


def test_requested_count_clamps_to_subtrees():
    store = monet_transform(figure1_document())
    subtrees = len(store.children_of(store.root_oid))
    plan = compute_shard_plan(store, 64)
    assert plan.shard_count == min(64, subtrees)


def test_shard_of_routes_every_oid(dblp_store):
    plan = compute_shard_plan(dblp_store, 3)
    assert plan.shard_of(dblp_store.root_oid) == 0
    for oid in dblp_store.iter_oids():
        shard = plan.shard_of(oid)
        if oid != dblp_store.root_oid:
            assert plan.starts[shard] <= oid < plan.ends[shard]
    with pytest.raises(ShardingError):
        plan.shard_of(dblp_store.last_oid + 1)


def test_plan_round_trips_through_dict(dblp_store):
    plan = compute_shard_plan(dblp_store, 2)
    assert ShardPlan.from_dict(plan.to_dict()) == plan
    with pytest.raises(ShardingError):
        ShardPlan.from_dict({"count": 2})


def test_invalid_shard_count(dblp_store):
    with pytest.raises(ShardingError):
        compute_shard_plan(dblp_store, 0)


def test_slices_are_valid_stores_with_original_oids(dblp_store):
    plan = compute_shard_plan(dblp_store, 3)
    shards = slice_store(dblp_store, plan)
    assert len(shards) == 3
    for shard_id, shard in enumerate(shards):
        shard.validate()
        assert shard.summary is dblp_store.summary
        lo, hi = plan.starts[shard_id], plan.ends[shard_id]
        assert shard.root_oid == lo - 1
        assert shard.node_count == hi - lo + 1
        for oid in range(lo, hi):
            assert shard.pid_of(oid) == dblp_store.pid_of(oid)
            assert shard.depth_of(oid) == dblp_store.depth_of(oid)
            parent = dblp_store.parent_of(oid)
            expected = shard.root_oid if parent == dblp_store.root_oid else parent
            assert shard.parent_of(oid) == expected
    # Shard 0's stand-in root *is* the true root.
    assert shards[0].root_oid == dblp_store.root_oid


def test_string_rows_partition_exactly(dblp_store):
    plan = compute_shard_plan(dblp_store, 4)
    shards = slice_store(dblp_store, plan)
    total = sum(
        len(relation)
        for shard in shards
        for relation in shard.strings.values()
    )
    expected = sum(len(r) for r in dblp_store.strings.values())
    assert total == expected
    # Root associations live in shard 0 only.
    root = dblp_store.root_oid
    for shard_id, shard in enumerate(shards):
        root_rows = sum(
            1
            for relation in shard.strings.values()
            for head, _value in relation
            if head == root
        )
        if shard_id == 0:
            assert root_rows == sum(
                1
                for relation in dblp_store.strings.values()
                for head, _value in relation
                if head == root
            )
        else:
            assert root_rows == 0


def test_wrong_plan_is_rejected(dblp_store):
    other = monet_transform(figure1_document())
    plan = compute_shard_plan(other, 1)
    with pytest.raises(ShardingError):
        slice_store(dblp_store, plan)


def test_childless_root_shards_to_root_only():
    from repro.datamodel.parser import parse_document

    store = monet_transform(parse_document("<bib key='x'/>", first_oid=1))
    plan = compute_shard_plan(store, 4)
    assert plan.shard_count == 1
    [shard] = slice_store(store, plan)
    assert shard.node_count == 1
    assert shard.root_oid == store.root_oid


def test_random_tree_slices_validate():
    store = monet_transform(random_document(11, nodes=600, max_children=4))
    plan = compute_shard_plan(store, 4)
    for shard in slice_store(store, plan):
        shard.validate()
