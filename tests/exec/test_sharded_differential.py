"""Differential acceptance: sharded serving answers byte-identically.

For every bundled dataset, the sharded coordinator must reproduce the
monolithic engine/processor answers — answer sets *and ranking order* —
on both backends and at 1, 2 and 4 shards, across all three query
surfaces (nearest, full-text search, query language).  This is the
tentpole's correctness contract: sharding is an execution detail, never
a semantics change.
"""

import pytest

from repro.core.engine import NearestConceptEngine
from repro.datamodel.errors import QueryPlanError
from repro.datasets import (
    DblpConfig,
    MultimediaConfig,
    PlaysConfig,
    dblp_document,
    figure1_document,
    multimedia_document,
    plays_document,
)
from repro.datasets.randomtree import random_document
from repro.exec import (
    SerialExecutor,
    ShardService,
    ShardedCollection,
    compute_shard_plan,
    slice_store,
)
from repro.monet.transform import monet_transform
from repro.query.executor import QueryProcessor

DATASETS = {
    "figure1": (
        lambda: figure1_document(),
        [("Bit", "1999"), ("Bob", "Byte"), ("Hack", "1999")],
        [
            "select meet($a,$b) from # $a, # $b "
            "where $a contains 'Bit' and $b contains '1999'",
            "select $a, tag($a) from # $a where $a contains 'Bit'",
            "select distinct tag($a) from # $a where $a contains 'Bit'",
        ],
    ),
    "plays": (
        lambda: plays_document(
            PlaysConfig(plays=2, acts_per_play=2, scenes_per_act=2)
        ),
        [("crown", "ghost"), ("love", "storm"), ("king", "night")],
        [
            "select meet($a,$b) from # $a, # $b "
            "where $a contains 'crown' and $b contains 'ghost'",
            "select tag($a), path($a) from # $a where $a contains 'storm'",
        ],
    ),
    "dblp": (
        lambda: dblp_document(
            DblpConfig(papers_per_proceedings=4, articles_per_year=2)
        ),
        [("ICDE", "1999"), ("VLDB", "1994"), ("SIGMOD", "1988")],
        [
            "select meet($a,$b) from # $a, # $b "
            "where $a contains 'ICDE' and $b contains '1999'",
            "select meet($a,$b) exclude root from # $a, # $b "
            "where $a contains 'VLDB' and $b contains '1994'",
            "select distinct tag($a) from # $a where $a contains 'SIGMOD'",
        ],
    ),
    "multimedia": (
        lambda: multimedia_document(MultimediaConfig(items=8)),
        [("wavelet", "texture"), ("motion", "region")],
        [
            "select meet($a,$b) from # $a, # $b "
            "where $a contains 'wavelet' and $b contains 'texture'",
        ],
    ),
    "random": (
        lambda: random_document(7, nodes=800, max_children=4),
        [("wavelet", "texture"), ("histogram", "contour")],
        [
            "select meet($a,$b) from # $a, # $b "
            "where $a contains 'wavelet' and $b contains 'texture'",
        ],
    ),
}

SHARD_COUNTS = (1, 2, 4)

NEAREST_OPTIONS = (
    {},
    {"limit": 5},
    {"exclude_root": True, "require_all_terms": True},
    {"within": 8},
    {"limit": 3, "within": 10},
)


@pytest.fixture(scope="module")
def stores():
    return {
        name: monet_transform(build())
        for name, (build, _terms, _queries) in DATASETS.items()
    }


def _sharded(store, backend, shards):
    plan = compute_shard_plan(store, shards)
    slices = slice_store(store, plan)
    services = [
        ShardService(shard, shard_id=index, backend=backend)
        for index, shard in enumerate(slices)
    ]
    return ShardedCollection(
        plan,
        store.summary,
        SerialExecutor(services),
        backend_name=backend,
        generations=[shard.generation for shard in slices],
    )


@pytest.mark.parametrize("dataset", list(DATASETS))
@pytest.mark.parametrize("backend", ["steered", "indexed"])
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_nearest_answers_and_ranking_identical(
    stores, dataset, backend, shards
):
    store = stores[dataset]
    _build, queries, _texts = DATASETS[dataset]
    engine = NearestConceptEngine(store, backend=backend)
    sharded = _sharded(store, backend, shards)
    for terms in queries:
        for options in NEAREST_OPTIONS:
            expected = engine.nearest_concepts(*terms, **options)
            actual = sharded.nearest_concepts(*terms, **options)
            # Dataclass equality covers oid, path, origins, terms,
            # joins, spread and depth; list equality covers ranking
            # order.  Byte-identical or bust.
            assert actual == expected, (
                f"{dataset}/{backend}/shards={shards}/{terms}/{options}: "
                "sharded answers diverged from the monolithic engine"
            )


@pytest.mark.parametrize("dataset", list(DATASETS))
@pytest.mark.parametrize("backend", ["steered", "indexed"])
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_query_language_identical(stores, dataset, backend, shards):
    store = stores[dataset]
    _build, _terms, texts = DATASETS[dataset]
    processor = QueryProcessor(store, backend=backend)
    sharded = _sharded(store, backend, shards)
    for text in texts:
        expected = processor.execute(text)
        actual = sharded.execute(text)
        assert actual.columns == expected.columns, (dataset, backend, text)
        assert actual.rows == expected.rows, (dataset, backend, shards, text)
        assert sharded.explain(text) == processor.explain(text)


@pytest.mark.parametrize("dataset", list(DATASETS))
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_term_hits_identical(stores, dataset, shards):
    store = stores[dataset]
    _build, queries, _texts = DATASETS[dataset]
    engine = NearestConceptEngine(store, backend="indexed")
    sharded = _sharded(store, "indexed", shards)
    for terms in queries:
        for term in terms:
            expected = sorted(engine.term_hits(term).oids())
            rows = sharded.term_hit_rows(term)
            assert [oid for oid, _pid in rows] == expected
            for oid, pid in rows:
                assert pid == store.pid_of(oid)


@pytest.mark.parametrize("backend", ["steered", "indexed"])
def test_distance_and_enumeration_queries(stores, backend):
    """distance(...) crossing shards and text()/path-var cells."""
    store = stores["dblp"]
    processor = QueryProcessor(store, backend=backend)
    sharded = _sharded(store, backend, 4)
    queries = [
        # Witnesses in (typically) different top-level subtrees.
        "select distance($a,$b) from #/booktitle $a, #/publisher $b "
        "where $a contains 'ICDE 1989' and $b contains 'Morgan'",
        "select text($a) from #/title $a where $a contains 'Bridging'",
    ]
    for text in queries:
        try:
            expected = (
                processor.execute(text).columns,
                processor.execute(text).rows,
            )
        except QueryPlanError as exc:
            expected = ("error", str(exc))
        try:
            actual = (sharded.execute(text).columns, sharded.execute(text).rows)
        except QueryPlanError as exc:
            actual = ("error", str(exc))
        assert actual == expected, (backend, text)


def test_scan_fallback_matches_monolithic(stores):
    """A token-shaped term absent from the global index must scan."""
    store = stores["figure1"]
    engine = NearestConceptEngine(store)
    sharded = _sharded(store, "steered", 2)
    # "Hac" is token-shaped but not a whole token anywhere: the
    # monolithic find() falls back to a substring scan; the sharded
    # path must make that decision globally, not per shard.
    expected = engine.nearest_concepts("Hac", "1999")
    actual = sharded.nearest_concepts("Hac", "1999")
    assert actual == expected
    assert [oid for oid, _ in sharded.term_hit_rows("Hac")] == sorted(
        engine.term_hits("Hac").oids()
    )
