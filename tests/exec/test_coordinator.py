"""Coordinator specifics: root meets, residue, caching, presentation."""

import pytest

from repro.core.engine import NearestConceptEngine
from repro.core.result_cache import ResultCache
from repro.datamodel.errors import ReproError
from repro.datamodel.parser import parse_document
from repro.datasets import DblpConfig, dblp_document
from repro.exec import (
    SerialExecutor,
    ShardService,
    ShardedCollection,
    compute_shard_plan,
    slice_store,
)
from repro.monet.transform import monet_transform

ROOT_HIT_XML = """
<bib owner="Bob Byte">
  <article><author>Alice Bit</author><year>1999</year></article>
  <article><author>Carol Code</author><year>2001</year></article>
  <article><author>Dan Data</author><year>1999</year></article>
</bib>
"""


def _sharded(store, shards, *, backend="steered", cache=None):
    plan = compute_shard_plan(store, shards)
    slices = slice_store(store, plan)
    services = [
        ShardService(shard, shard_id=index, backend=backend)
        for index, shard in enumerate(slices)
    ]
    return ShardedCollection(
        plan,
        store.summary,
        SerialExecutor(services),
        backend_name=backend,
        generations=[shard.generation for shard in slices],
        cache=cache,
    )


@pytest.fixture(scope="module")
def root_store():
    return monet_transform(parse_document(ROOT_HIT_XML, first_oid=1))


@pytest.fixture(scope="module")
def dblp_store():
    return monet_transform(
        dblp_document(DblpConfig(papers_per_proceedings=3, articles_per_year=2))
    )


def test_root_attribute_hits_meet_at_root(root_store):
    """Two terms hitting only the root's own attribute ("Bob Byte"):

    the meet *is* the root, and only shard 0 holds the association —
    the coordinator must assemble it from the residue."""
    engine = NearestConceptEngine(root_store)
    for shards in (1, 2, 3):
        sharded = _sharded(root_store, shards)
        expected = engine.nearest_concepts("Bob", "Byte")
        actual = sharded.nearest_concepts("Bob", "Byte")
        assert actual == expected
        assert actual and actual[0].oid == root_store.root_oid


def test_cross_shard_residue_forms_root_meet(root_store):
    """Terms whose witnesses live in different top-level subtrees meet
    at the root; per-shard roll-ups can never see that node."""
    engine = NearestConceptEngine(root_store)
    sharded = _sharded(root_store, 3)
    expected = engine.nearest_concepts("Alice", "Carol")
    actual = sharded.nearest_concepts("Alice", "Carol")
    assert actual == expected
    assert any(c.oid == root_store.root_oid for c in actual)


def test_exclude_root_suppresses_the_root_meet(root_store):
    engine = NearestConceptEngine(root_store)
    sharded = _sharded(root_store, 3)
    assert sharded.nearest_concepts(
        "Alice", "Carol", exclude_root=True
    ) == engine.nearest_concepts("Alice", "Carol", exclude_root=True)


def test_nearest_requires_two_terms(root_store):
    sharded = _sharded(root_store, 2)
    with pytest.raises(ValueError):
        sharded.nearest_concepts("Alice")


def test_cache_hits_and_layout_isolation(dblp_store):
    """One shared cache across two layouts: keys must never collide."""
    cache = ResultCache(maxsize=64)
    two = _sharded(dblp_store, 2, cache=cache)
    first = two.nearest_concepts("ICDE", "1999", limit=5)
    again = two.nearest_concepts("ICDE", "1999", limit=5)
    assert again == first
    info = cache.cache_info()
    assert info.hits == 1 and info.misses == 1

    # A different layout (re-sharding) must miss, not serve stale rows:
    # its generation vector differs, so sync_generation purges.
    three = _sharded(dblp_store, 3, cache=cache)
    rebuilt = three.nearest_concepts("ICDE", "1999", limit=5)
    assert rebuilt == first
    assert cache.cache_info().misses == 2


def test_query_cache_round_trip(dblp_store):
    cache = ResultCache(maxsize=8)
    sharded = _sharded(dblp_store, 2, cache=cache)
    text = (
        "select meet($a,$b) from # $a, # $b "
        "where $a contains 'ICDE' and $b contains '1999'"
    )
    first = sharded.execute(text)
    second = sharded.execute(text)
    assert second.columns == first.columns and second.rows == first.rows
    assert cache.cache_info().hits == 1


def test_snippets_match_engine(dblp_store):
    engine = NearestConceptEngine(dblp_store)
    sharded = _sharded(dblp_store, 3)
    concepts = engine.nearest_concepts("ICDE", "1999", limit=5)
    oids = [concept.oid for concept in concepts]
    snippets = sharded.snippets(oids)
    for concept in concepts:
        assert snippets[concept.oid] == engine.snippet(concept)


def test_root_snippet_composes_across_shards(root_store):
    engine = NearestConceptEngine(root_store)
    sharded = _sharded(root_store, 3)
    root = root_store.root_oid
    assert sharded.snippets([root])[root] == engine.snippet(root)
    # Narrow widths exercise the truncation path.
    assert sharded.snippets([root], width=10)[root] == engine.snippet(
        root, width=10
    )


def test_to_xml_matches_engine(dblp_store):
    engine = NearestConceptEngine(dblp_store)
    sharded = _sharded(dblp_store, 3)
    [concept] = engine.nearest_concepts("ICDE", "1999", limit=1)
    assert sharded.to_xml(concept.oid) == engine.to_xml(concept.oid)


@pytest.mark.parametrize("shards", (1, 2, 3))
@pytest.mark.parametrize("indent", (2, 4, None))
def test_root_to_xml_composes_across_shards(
    root_store, dblp_store, shards, indent
):
    """Serializing the root — the whole document — is a cross-shard
    assembly and must match the monolithic serializer byte for byte."""
    for store in (root_store, dblp_store):
        engine = NearestConceptEngine(store)
        sharded = _sharded(store, shards)
        assert sharded.to_xml(store.root_oid, indent=indent) == (
            engine.to_xml(store.root_oid, indent=indent)
        )


def test_root_to_xml_edge_shapes():
    """Self-closing and all-cdata roots frame identically."""
    from repro.datamodel.parser import parse_document

    for xml in ("<bib key='x'/>", "<bib>only text here</bib>"):
        store = monet_transform(parse_document(xml, first_oid=1))
        engine = NearestConceptEngine(store)
        sharded = _sharded(store, 2)
        for indent in (2, None):
            assert sharded.to_xml(store.root_oid, indent=indent) == (
                engine.to_xml(store.root_oid, indent=indent)
            )


def test_pids_of_batches_across_shards(dblp_store):
    sharded = _sharded(dblp_store, 3)
    oids = [dblp_store.root_oid, *range(2, 30, 7)]
    pids = sharded.pids_of(oids)
    for oid in oids:
        assert pids[oid] == dblp_store.pid_of(oid)


def test_last_shard_stats_records_rounds(dblp_store):
    sharded = _sharded(dblp_store, 2)
    sharded.nearest_concepts("ICDE", "1999", limit=3)
    stats = sharded.last_shard_stats()
    assert stats["count"] == 2
    assert stats["rounds"] == 1
    assert len(stats["per_shard_ms"]) == 2
    # A term absent from the token index forces the second round.
    sharded.nearest_concepts("Hac", "1999")
    assert sharded.last_shard_stats()["rounds"] == 2


ROOT_QUERY_CASES = [
    # Root binds via the ancestor closure; text(root) spans all shards.
    "select $a, tag($a), text($a) from bib $a where $a contains 'Alice'",
    # Root binds via equals on its own attribute (shard 0 only).
    "select $a, path($a) from bib $a where $a = 'Bob Byte'",
    # Enumeration where the root is one bound node among many.
    "select tag($a) from # $a where $a contains '1999'",
    # Distance where one witness is the root itself.
    "select distance($a,$b) from bib $a, #/author $b "
    "where $a = 'Bob Byte' and $b contains 'Alice'",
    # Meet aggregation where one variable binds only the root.
    "select meet($a,$b) from bib $a, #/author $b "
    "where $a = 'Bob Byte' and $b contains 'Carol'",
]


@pytest.mark.parametrize("shards", (1, 2, 3))
def test_root_binding_query_paths(root_store, shards):
    """Every way the true root can enter a query binds identically."""
    from repro.query.executor import QueryProcessor

    processor = QueryProcessor(root_store)
    sharded = _sharded(root_store, shards)
    for text in ROOT_QUERY_CASES:
        expected = processor.execute(text)
        actual = sharded.execute(text)
        assert (actual.columns, actual.rows) == (
            expected.columns,
            expected.rows,
        ), (shards, text)


def test_executor_shard_count_must_match(dblp_store):
    plan = compute_shard_plan(dblp_store, 2)
    slices = slice_store(dblp_store, plan)
    services = [
        ShardService(shard, shard_id=index)
        for index, shard in enumerate(slices[:1])
    ]
    with pytest.raises(ReproError):
        ShardedCollection(
            plan,
            dblp_store.summary,
            SerialExecutor(services),
            generations=(1,),
        )
