"""Frame protocol: round-trips, corruption detection, deadlines."""

import socket
import threading
import time

import pytest

from repro.exec.deadline import (
    Deadline,
    DeadlineExceededError,
    current_deadline,
    deadline_scope,
)
from repro.exec.transport import (
    FRAME_MAGIC,
    KIND_REQUEST,
    KIND_RESPONSE,
    ConnectionClosedError,
    FrameError,
    TransportError,
    connect,
    read_raw_frame,
    recv_frame,
    send_frame,
)


@pytest.fixture()
def sock_pair():
    server, client = socket.socketpair()
    yield server, client
    server.close()
    client.close()


def test_frame_round_trip(sock_pair):
    server, client = sock_pair
    payload = {"shard": 3, "op": "hits", "params": {"terms": [("a", "word")]}}
    send_frame(client, KIND_REQUEST, 42, payload)
    kind, request_id, received = recv_frame(server)
    assert kind == KIND_REQUEST
    assert request_id == 42
    assert received == payload


def test_frame_preserves_python_types(sock_pair):
    # The reason the protocol pickles instead of JSON: shard payloads
    # carry int-keyed dicts, tuples and sets, and they must survive.
    server, client = sock_pair
    payload = {1: (2, 3), "s": {4, 5}, "t": ("x", 0)}
    send_frame(client, KIND_RESPONSE, 1, payload)
    _, _, received = recv_frame(server)
    assert received == payload
    assert isinstance(received[1], tuple)
    assert isinstance(received["s"], set)


def test_bad_magic_is_frame_error(sock_pair):
    server, client = sock_pair
    client.sendall(b"JUNK" + bytes(18))
    with pytest.raises(FrameError):
        recv_frame(server)


def test_corrupt_payload_fails_checksum(sock_pair):
    server, client = sock_pair
    send_frame(client, KIND_REQUEST, 7, {"op": "ping"})
    raw = bytearray(read_raw_frame(server))
    raw[-1] ^= 0xFF
    server2, client2 = socket.socketpair()
    try:
        client2.sendall(bytes(raw))
        with pytest.raises(FrameError, match="checksum"):
            recv_frame(server2)
    finally:
        server2.close()
        client2.close()


def test_torn_frame_is_frame_error(sock_pair):
    server, client = sock_pair
    send_frame(client, KIND_REQUEST, 9, {"op": "ping", "pad": "x" * 64})
    raw = read_raw_frame(server)
    server2, client2 = socket.socketpair()
    try:
        client2.sendall(raw[: len(raw) // 2])
        client2.close()
        with pytest.raises(FrameError, match="torn"):
            recv_frame(server2)
    finally:
        server2.close()


def test_clean_close_between_frames(sock_pair):
    server, client = sock_pair
    client.close()
    with pytest.raises(ConnectionClosedError):
        recv_frame(server)


def test_oversized_length_rejected_without_allocation(sock_pair):
    import struct

    server, client = sock_pair
    header = struct.Struct("<4sBBQII").pack(
        FRAME_MAGIC, 1, KIND_REQUEST, 1, 2**31, 0
    )
    client.sendall(header)
    with pytest.raises(FrameError, match="limit"):
        recv_frame(server)


def test_recv_respects_deadline(sock_pair):
    server, _client = sock_pair  # nothing will ever arrive
    deadline = Deadline.after(0.05)
    started = time.monotonic()
    with pytest.raises(DeadlineExceededError):
        recv_frame(server, deadline=deadline)
    assert time.monotonic() - started < 2.0


def test_expired_deadline_raises_before_blocking(sock_pair):
    server, _client = sock_pair
    with pytest.raises(DeadlineExceededError):
        recv_frame(server, deadline=Deadline(expires_at=0.0))


def test_connect_refused_is_transport_error():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    address = sock.getsockname()[:2]
    sock.close()  # port now (very likely) unbound
    with pytest.raises(TransportError):
        connect(address, timeout=0.5)


def test_deadline_scope_is_scoped():
    assert current_deadline() is None
    with deadline_scope(Deadline.after(10)) as deadline:
        assert current_deadline() is deadline
        with deadline_scope(None):
            # An inner scope can explicitly clear the budget.
            assert current_deadline() is None
        assert current_deadline() is deadline
    assert current_deadline() is None


def test_deadline_scope_does_not_leak_to_new_threads():
    seen = []
    with deadline_scope(Deadline.after(10)):
        thread = threading.Thread(
            target=lambda: seen.append(current_deadline())
        )
        thread.start()
        thread.join()
    assert seen == [None]
