"""Randomized fault injection: chaos runs end byte-identical to serial.

Two layers of guarantee, both driven by the seeded
:class:`tests.exec.chaos.ChaosProxy`:

* **with a healthy backup replica**, every query *succeeds* and its
  answer is byte-identical to the serial executor's, no matter what
  the proxy does to the primary — delays, drops, torn frames,
  corrupted checksums, connection kills;
* **with only chaotic replicas**, every query either succeeds with
  the correct answer or raises a *typed* error
  (:class:`ExecutorError` / :class:`DeadlineExceededError`) within
  its deadline — never a wrong answer, never a hang.

The fault schedule is seeded; the seed is baked into the failure
message, so any failure replays with
``REPRO_CHAOS_SEED=<seed> python -m pytest tests/exec/test_chaos.py``.
"""

import os
import random
import time

import pytest

from repro.datasets import DblpConfig, dblp_document
from repro.exec import (
    ClusterExecutor,
    Deadline,
    DeadlineExceededError,
    ExecutorError,
    ReplicaSpec,
    SerialExecutor,
    ShardService,
    ShardedCollection,
    compute_shard_plan,
    deadline_scope,
    slice_store,
)
from repro.exec.remote import ShardWorkerServer
from repro.monet.transform import monet_transform

from .chaos import ChaosProxy

SHARDS = 2

#: Every fault kind, weighted towards actual faults.
CHAOS_WEIGHTS = {
    "ok": 3.0,
    "delay": 1.0,
    "drop": 1.0,
    "torn": 1.0,
    "corrupt": 1.0,
    "kill": 1.0,
}

QUERIES = [
    ("ICDE", "1999"),
    ("VLDB", "1994"),
    ("SIGMOD", "1988"),
    ("ICDE", "2001"),
]


def _seed() -> int:
    env = os.environ.get("REPRO_CHAOS_SEED")
    return int(env) if env else random.randrange(2**32)


@pytest.fixture(scope="module")
def fabric():
    store = monet_transform(
        dblp_document(DblpConfig(papers_per_proceedings=4, articles_per_year=2))
    )
    plan = compute_shard_plan(store, SHARDS)
    slices = slice_store(store, plan)
    services = {
        index: ShardService(shard, shard_id=index, backend="indexed")
        for index, shard in enumerate(slices)
    }
    serial = ShardedCollection(
        plan,
        store.summary,
        SerialExecutor([services[i] for i in range(SHARDS)]),
        backend_name="indexed",
        generations=[0] * SHARDS,
    )
    baselines = {terms: serial.nearest_concepts(*terms) for terms in QUERIES}
    return store, plan, services, baselines


def _collection(store, plan, executor):
    return ShardedCollection(
        plan,
        store.summary,
        executor,
        backend_name="indexed",
        generations=[0] * SHARDS,
    )


def test_chaos_with_backup_replica_is_byte_identical(fabric):
    store, plan, services, baselines = fabric
    seed = _seed()
    worker = ShardWorkerServer(services, host="127.0.0.1", port=0).start()
    proxy = ChaosProxy(
        worker.address, seed=seed, weights=CHAOS_WEIGHTS, max_delay=0.05
    ).start()
    # Shard replica order: the chaotic proxy first, the direct worker
    # as backup — failover must absorb every injected fault.
    executor = ClusterExecutor(
        [[ReplicaSpec(proxy.address), ReplicaSpec(worker.address)]] * SHARDS,
        connect_timeout=1.0,
        attempt_timeout=5.0,
        backoff_base=0.005,
        backoff_cap=0.02,
        failure_threshold=3,
        open_seconds=0.05,
        seed=seed,
    )
    collection = _collection(store, plan, executor)
    try:
        for round_index in range(10):
            for terms in QUERIES:
                with deadline_scope(Deadline.after(30.0)):
                    actual = collection.nearest_concepts(*terms)
                assert actual == baselines[terms], (
                    f"chaos run diverged from serial "
                    f"(seed={seed}, round={round_index}, terms={terms}) — "
                    f"replay with REPRO_CHAOS_SEED={seed}"
                )
        assert sum(proxy.injected.values()) > 0
    finally:
        executor.close()
        proxy.stop()
        worker.shutdown()


def test_chaos_without_backup_never_wrong_never_hangs(fabric):
    store, plan, services, baselines = fabric
    seed = _seed()
    worker = ShardWorkerServer(services, host="127.0.0.1", port=0).start()
    proxies = [
        ChaosProxy(
            worker.address, seed=seed + i, weights=CHAOS_WEIGHTS,
            max_delay=0.05,
        ).start()
        for i in range(SHARDS)
    ]
    executor = ClusterExecutor(
        [[ReplicaSpec(proxy.address)] for proxy in proxies],
        connect_timeout=1.0,
        attempt_timeout=2.0,
        backoff_base=0.005,
        backoff_cap=0.02,
        failure_threshold=1_000_000,  # keep circuits closed: max churn
        seed=seed,
    )
    collection = _collection(store, plan, executor)
    outcomes = {"ok": 0, "unavailable": 0, "deadline": 0}
    try:
        for round_index in range(12):
            for terms in QUERIES:
                started = time.monotonic()
                budget = 3.0
                try:
                    with deadline_scope(Deadline.after(budget)):
                        actual = collection.nearest_concepts(*terms)
                except ExecutorError:
                    outcomes["unavailable"] += 1
                except DeadlineExceededError:
                    outcomes["deadline"] += 1
                else:
                    outcomes["ok"] += 1
                    assert actual == baselines[terms], (
                        f"chaos produced a WRONG ANSWER "
                        f"(seed={seed}, round={round_index}, "
                        f"terms={terms}) — replay with "
                        f"REPRO_CHAOS_SEED={seed}"
                    )
                elapsed = time.monotonic() - started
                assert elapsed < budget + 2.0, (
                    f"request overran its deadline by {elapsed - budget:.1f}s "
                    f"(seed={seed}) — replay with REPRO_CHAOS_SEED={seed}"
                )
        # The schedule weighted half the frames as faults: the run
        # must actually have exercised them.
        total_faults = sum(
            sum(v for k, v in proxy.injected.items() if k != "ok")
            for proxy in proxies
        )
        assert total_faults > 0, f"no faults injected (seed={seed})"
    finally:
        executor.close()
        for proxy in proxies:
            proxy.stop()
        worker.shutdown()
