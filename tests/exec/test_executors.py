"""Executor behaviour: serial scatter, the process pool, crash recovery."""

import os
import signal
import time

import pytest

from repro.core.engine import NearestConceptEngine
from repro.datasets import DblpConfig, dblp_document
from repro.exec import (
    ExecutorError,
    ParallelExecutor,
    SerialExecutor,
    ShardService,
    ShardedCollection,
    compute_shard_plan,
    slice_store,
)
from repro.monet.transform import monet_transform
from repro.snapshot.sharded import write_shard_bundles


@pytest.fixture(scope="module")
def store():
    return monet_transform(
        dblp_document(DblpConfig(papers_per_proceedings=3, articles_per_year=2))
    )


@pytest.fixture(scope="module")
def bundles(store, tmp_path_factory):
    directory = tmp_path_factory.mktemp("shards")
    plan, paths, _size = write_shard_bundles(
        store, directory, "dblp", shards=2
    )
    return plan, paths


@pytest.fixture(scope="module")
def pool(bundles):
    _plan, paths = bundles
    executor = ParallelExecutor(paths, workers=2, backend="indexed")
    yield executor
    executor.close()


def test_serial_scatter_preserves_order(store):
    plan = compute_shard_plan(store, 3)
    slices = slice_store(store, plan)
    executor = SerialExecutor(
        [ShardService(s, shard_id=i) for i, s in enumerate(slices)]
    )
    responses = executor.broadcast("ping", {})
    assert [response["shard"] for response in responses] == [0, 1, 2]
    assert sum(response["nodes"] for response in responses) == (
        store.node_count + plan.shard_count - 1
    )
    assert executor.stats()["mode"] == "serial"


def test_parallel_pool_answers_and_reports_workers(bundles, pool, store):
    plan, _paths = bundles
    responses = pool.broadcast("ping", {})
    assert [response["shard"] for response in responses] == [0, 1]
    pids = {response["pid"] for response in responses}
    assert pids and os.getpid() not in pids
    stats = pool.stats()
    assert stats["mode"] == "parallel"
    assert stats["workers"] == 2
    # Bundles load pre-seeded: the pool never builds an index.
    assert stats["index_builds"] == {"lca": 0, "fulltext": 0}


def test_parallel_end_to_end_matches_engine(bundles, pool, store):
    plan, _paths = bundles
    sharded = ShardedCollection(
        plan,
        store.summary,
        pool,
        backend_name="indexed",
        generations=(1, 1),
    )
    engine = NearestConceptEngine(store, backend="indexed")
    assert sharded.nearest_concepts(
        "ICDE", "1999", limit=5
    ) == engine.nearest_concepts("ICDE", "1999", limit=5)


def test_worker_crash_fails_cleanly_then_respawns(bundles):
    _plan, paths = bundles
    executor = ParallelExecutor(paths, workers=1, backend="indexed")
    try:
        before = executor.stats()
        assert before["respawns"] == 0
        with pytest.raises(ExecutorError):
            executor.scatter([(0, "_crash", {})])
        # The very next request respawns the pool and succeeds.
        responses = executor.broadcast("ping", {})
        assert [response["shard"] for response in responses] == [0, 1]
        assert executor.stats()["respawns"] == 1
    finally:
        executor.close()


def test_worker_killed_externally_fails_cleanly(bundles):
    _plan, paths = bundles
    executor = ParallelExecutor(paths, workers=1, backend="indexed")
    try:
        [response] = executor.scatter([(0, "ping", {})])
        os.kill(response["pid"], signal.SIGKILL)
        deadline = time.monotonic() + 10
        failed = False
        while time.monotonic() < deadline:
            try:
                executor.broadcast("ping", {})
            except ExecutorError:
                failed = True
                break
            time.sleep(0.05)
        assert failed, "killing the worker never surfaced an ExecutorError"
        # Recovery: the pool comes back.
        assert len(executor.broadcast("ping", {})) == 2
    finally:
        executor.close()


def test_invalid_construction(bundles):
    _plan, paths = bundles
    with pytest.raises(ExecutorError):
        ParallelExecutor(paths, workers=0)
    with pytest.raises(ExecutorError):
        ParallelExecutor([], workers=1)


def test_closed_pool_refuses_instead_of_respawning(bundles):
    """After close() the pool must never silently resurrect — its temp
    bundles may already be deleted."""
    _plan, paths = bundles
    executor = ParallelExecutor(paths, workers=1, backend="indexed")
    executor.close()
    with pytest.raises(ExecutorError, match="closed"):
        executor.broadcast("ping", {})
    executor.close()  # idempotent
