"""A reusable fault-injection harness for the shard socket protocol.

:class:`ChaosProxy` sits between a cluster executor and a real
:class:`~repro.exec.remote.ShardWorkerServer`, forwarding whole frames
(via :func:`~repro.exec.transport.read_raw_frame`, so it never has to
understand payloads) and injecting faults from a **seeded** schedule:

* ``ok``     — forward the request and its response untouched;
* ``delay``  — forward, but stall the response by a random pause
  (drives deadline and failover-timeout paths);
* ``drop``   — read the request, never answer, close the connection
  (a worker death after receiving work);
* ``torn``   — answer with a prefix of the real response frame, then
  close (a mid-frame crash; the CRC/framing layer must catch it);
* ``corrupt``— answer with the real frame, payload bytes flipped
  (the checksum must catch it);
* ``kill``   — close the connection *before* reading the request.

The schedule derives from ``random.Random(seed)``, so every run is
reproducible from its seed alone — tests print the seed on failure.
Determinism caveat: the *sequence* of faults is seeded per
connection-handling thread; under concurrent callers the interleaving
across connections still varies, which is exactly the point (answers
must be right under any interleaving).
"""

from __future__ import annotations

import random
import socket
import threading
from typing import Dict, Optional, Sequence, Tuple

from repro.exec.transport import (
    ConnectionClosedError,
    TransportError,
    connect,
    read_raw_frame,
)

__all__ = ["ChaosProxy", "FAULT_KINDS"]

FAULT_KINDS = ("ok", "delay", "drop", "torn", "corrupt", "kill")


class ChaosProxy:
    """A fault-injecting TCP proxy in front of one shard worker.

    ``weights`` maps fault kinds to relative probabilities (missing
    kinds get 0; everything unlisted defaults to ``ok``).  The proxy
    listens on an ephemeral port; point replica specs at
    :attr:`address`.
    """

    def __init__(
        self,
        upstream: Tuple[str, int],
        *,
        seed: int,
        weights: Optional[Dict[str, float]] = None,
        max_delay: float = 0.2,
        host: str = "127.0.0.1",
    ):
        self.upstream = upstream
        self.seed = seed
        self.max_delay = max_delay
        weights = dict(weights or {"ok": 1.0})
        unknown = set(weights) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        self._kinds = tuple(weights)
        self._weights = tuple(weights[k] for k in self._kinds)
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self.injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(32)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._shutdown = threading.Event()
        self._thread = threading.Thread(
            target=self._accept_loop,
            name=f"chaos-proxy-{self.address[1]}",
            daemon=True,
        )

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ChaosProxy":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._thread.join(timeout=5)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- fault schedule --------------------------------------------------
    def _next_fault(self) -> Tuple[str, float]:
        """The next scheduled fault and (for delays) its pause."""
        with self._rng_lock:
            kind = self._rng.choices(self._kinds, weights=self._weights)[0]
            pause = self._rng.uniform(0.0, self.max_delay)
        self.injected[kind] += 1
        return kind, pause

    # -- proxying ---------------------------------------------------------
    def _accept_loop(self) -> None:
        self._listener.settimeout(0.2)
        while not self._shutdown.is_set():
            try:
                downstream, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(downstream,), daemon=True
            ).start()

    def _serve(self, downstream: socket.socket) -> None:
        """One caller connection: per-frame forwarding with faults."""
        upstream: Optional[socket.socket] = None
        try:
            upstream = connect(self.upstream, timeout=5.0)
            while not self._shutdown.is_set():
                fault, pause = self._next_fault()
                if fault == "kill":
                    return  # close before even reading the request
                try:
                    request = read_raw_frame(downstream, timeout=30.0)
                except (ConnectionClosedError, TransportError, OSError):
                    return  # caller went away / gave up
                if fault == "drop":
                    return  # swallow the request, close both sides
                try:
                    upstream.sendall(request)
                    response = read_raw_frame(upstream, timeout=30.0)
                except (TransportError, OSError):
                    return  # upstream worker is gone
                if fault == "delay":
                    self._shutdown.wait(pause)
                elif fault == "torn":
                    cut = max(1, len(response) // 2)
                    try:
                        downstream.sendall(response[:cut])
                    except OSError:
                        pass
                    return
                elif fault == "corrupt":
                    # Flip bits in the payload, keep the header: the
                    # receiver must reject it by checksum, not by
                    # framing.
                    mangled = bytearray(response)
                    for offset in range(len(mangled) - 4, len(mangled)):
                        mangled[offset] ^= 0xFF
                    try:
                        downstream.sendall(bytes(mangled))
                    except OSError:
                        pass
                    return  # stream is poisoned either way
                try:
                    downstream.sendall(response)
                except OSError:
                    return
        finally:
            for sock in (downstream, upstream):
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:  # pragma: no cover
                        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ChaosProxy {self.address} -> {self.upstream} "
            f"seed={self.seed}>"
        )
