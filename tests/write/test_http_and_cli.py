"""The outward write surface: HTTP verbs and CLI subcommands.

Covers the ``/v1/documents`` PUT/DELETE/GET routes and ``/v1/compact``
(status mapping included: 409 duplicate, 404 unknown document or
collection, 400 malformed), the envelope codecs, and the ``repro
put``/``delete``/``compact`` CLI round trip against a real catalog.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.api import Database, DatabaseOptions, ReproServer
from repro.api.envelopes import (
    CompactRequest,
    DeleteDocumentRequest,
    EnvelopeError,
    PutDocumentRequest,
    request_from_dict,
)
from repro.cli import main
from repro.snapshot import Catalog, read_snapshot

from .harness import DATASETS, write_source

FRAGMENT = DATASETS["figure1"]["fragments"][0]
FRAGMENT2 = DATASETS["figure1"]["fragments"][1]


# -- envelope codecs ----------------------------------------------------
def test_put_request_codec_round_trip():
    request = PutDocumentRequest(name="memo", xml="<m>x</m>", replace=True)
    assert request_from_dict(request.to_dict()) == request
    assert request_from_dict(
        {"kind": "put_document", "name": "a", "xml": "<a/>"}
    ) == PutDocumentRequest(name="a", xml="<a/>")


def test_delete_and_compact_request_codecs():
    request = DeleteDocumentRequest(name="memo", collection="docs")
    assert request_from_dict(request.to_dict()) == request
    assert request_from_dict({"kind": "compact"}) == CompactRequest()


@pytest.mark.parametrize(
    "payload",
    [
        {"kind": "put_document", "xml": "<a/>"},  # missing name
        {"kind": "put_document", "name": "a"},  # missing xml
        {"kind": "put_document", "name": "a", "xml": "  "},  # blank xml
        {"kind": "put_document", "name": "", "xml": "<a/>"},  # empty name
        {"kind": "put_document", "name": "a", "xml": "<a/>", "bogus": 1},
        {"kind": "delete_document"},  # missing name
        {"kind": "compact", "bogus": True},
    ],
)
def test_malformed_write_envelopes_rejected(payload):
    with pytest.raises(EnvelopeError):
        request_from_dict(payload)


# -- HTTP ---------------------------------------------------------------
def _call(url, method, payload=None):
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture()
def served(tmp_path):
    source, _model = write_source(tmp_path, "figure1")
    catalog = Catalog(tmp_path / "catalog", create=True)
    catalog.ingest("docs", source)
    db = Database.open(
        snapshot="docs",
        options=DatabaseOptions(catalog=catalog.root, backend="indexed"),
    )
    server = ReproServer({"docs": db}, port=0, close_databases=True)
    with server:
        yield server, catalog


def test_http_document_lifecycle(served):
    server, catalog = served
    url = server.url

    status, receipt = _call(
        url("/v1/documents"), "PUT", {"name": "memo", "xml": FRAGMENT}
    )
    assert status == 200 and receipt["op"] == "put"
    assert receipt["documents"] == 2  # one seed + memo

    # Duplicate put → 409; replace flag → upsert; unknown delete → 404.
    status, body = _call(
        url("/v1/documents"), "PUT", {"name": "memo", "xml": FRAGMENT}
    )
    assert status == 409
    status, receipt = _call(
        url("/v1/documents"),
        "PUT",
        {"name": "memo", "xml": FRAGMENT2, "replace": True},
    )
    assert status == 200 and receipt["op"] == "replace"
    status, _body = _call(url("/v1/documents"), "DELETE", {"name": "ghost"})
    assert status == 404

    status, listing = _call(url("/v1/documents?collection=docs"), "GET")
    assert status == 200 and "memo" in listing["documents"]
    status, _body = _call(url("/v1/documents?collection=nope"), "GET")
    assert status == 404

    # Mutations are durable: the bundle carries the delta tail until
    # /v1/compact folds it.
    assert read_snapshot(catalog.bundle_path("docs")).delta_count == 2
    status, receipt = _call(url("/v1/compact"), "POST", {})
    assert status == 200 and receipt["op"] == "compact"
    assert read_snapshot(catalog.bundle_path("docs")).delta_count == 0

    status, receipt = _call(
        url("/v1/documents"), "DELETE", {"name": "memo"}
    )
    assert status == 200 and receipt["op"] == "delete"

    # Malformed body → 400; kind mismatch → 400.
    status, _body = _call(url("/v1/documents"), "PUT", {"name": "x"})
    assert status == 400
    status, _body = _call(
        url("/v1/documents"), "PUT", {"kind": "compact"}
    )
    assert status == 400
    status, _body = _call(url("/v1/compact?x=1"), "PUT", {})
    assert status == 404  # compact is POST-only


def test_http_unparseable_fragment_rejected(served):
    server, _catalog = served
    status, body = _call(
        server.url("/v1/documents"),
        "PUT",
        {"name": "broken", "xml": "<a><b></a>"},
    )
    assert status == 400
    status, listing = _call(server.url("/v1/documents"), "GET")
    assert "broken" not in listing["documents"]


# -- CLI ----------------------------------------------------------------
def test_cli_put_delete_compact_round_trip(tmp_path, capsys):
    source, _model = write_source(tmp_path, "figure1")
    catalog_dir = str(tmp_path / "catalog")
    fragment_file = tmp_path / "memo.xml"
    fragment_file.write_text(FRAGMENT, encoding="utf-8")

    assert main(
        ["snapshot", "build", str(source), "docs", "--catalog", catalog_dir]
    ) == 0
    assert main(
        ["put", "docs", "memo", str(fragment_file), "--catalog", catalog_dir]
    ) == 0
    assert "put memo" in capsys.readouterr().out

    # The new document answers queries on the next open.
    assert main(
        ["search", "--snapshot", "docs", "--catalog", catalog_dir,
         "Bit", "1999", "--limit", "3"]
    ) == 0

    # Duplicate put → clean CLI error; --replace upserts.
    assert main(
        ["put", "docs", "memo", str(fragment_file), "--catalog", catalog_dir]
    ) == 2
    assert "already exists" in capsys.readouterr().err
    fragment_file.write_text(FRAGMENT2, encoding="utf-8")
    assert main(
        ["put", "docs", "memo", str(fragment_file), "--catalog", catalog_dir,
         "--replace"]
    ) == 0

    assert main(["compact", "docs", "--catalog", catalog_dir]) == 0
    assert "compacted" in capsys.readouterr().out
    assert read_snapshot(
        Catalog(tmp_path / "catalog").bundle_path("docs")
    ).delta_count == 0

    assert main(["delete", "docs", "memo", "--catalog", catalog_dir]) == 0
    assert main(["delete", "docs", "memo", "--catalog", catalog_dir]) == 2

    # Re-balance into shard bundles, after which live writes refuse.
    assert main(
        ["compact", "docs", "--catalog", catalog_dir, "--shards", "2"]
    ) == 0
    capsys.readouterr()
    assert main(
        ["put", "docs", "memo2", str(fragment_file), "--catalog", catalog_dir]
    ) == 2
    assert "read-only" in capsys.readouterr().err
