"""Seeded 200-step mutation fuzz: live answers vs rebuild, every step.

The seed is printed (and embedded in the assertion context) on any
failure, so a red run reproduces with::

    REPRO_FUZZ_SEED=<seed> python -m pytest tests/write/test_fuzz.py

The model store stays small (figure1) so 200 oracle rebuilds and the
three-surface comparison after every step stay fast; breadth across
datasets/backends/shards lives in test_differential.py.
"""

import os

import pytest

from .harness import (
    MutationFuzzer,
    apply_step,
    assert_equivalent,
    open_live,
    write_source,
)

DEFAULT_SEED = 20260807
FUZZ_STEPS = 200


def _seed():
    return int(os.environ.get("REPRO_FUZZ_SEED", DEFAULT_SEED))


@pytest.mark.parametrize("shards", (None, 2), ids=("monolithic", "sharded"))
def test_200_step_mutation_fuzz(tmp_path, shards):
    seed = _seed()
    source, model = write_source(tmp_path, "figure1")
    db = open_live(source, backend="indexed", shards=shards)
    fuzzer = MutationFuzzer(model, "figure1", seed=seed)
    step = None
    try:
        for index in range(FUZZ_STEPS):
            step = fuzzer.step()
            apply_step(db, model, step)
            # Interleave compaction like a real serving process would.
            if index % 37 == 36:
                db.compact()
            assert_equivalent(
                db,
                model,
                "indexed",
                "figure1",
                f"fuzz seed={seed} shards={shards} step={index} op={step}",
            )
    except Exception:
        print(
            f"\nmutation fuzz FAILED: seed={seed} shards={shards} "
            f"last step={step!r} — reproduce with "
            f"REPRO_FUZZ_SEED={seed} python -m pytest {__file__}"
        )
        raise
    finally:
        db.close()
