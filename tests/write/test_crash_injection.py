"""Crash injection around the delta log and online compaction.

Every scenario kills the process at a chosen point (by raising from a
monkeypatched primitive, or by physically truncating the bundle the way
an interrupted ``write()`` would) and then proves the recovery
invariant: the collection re-opens and serves **byte-identically** the
acknowledged state — mutations whose delta append completed are there,
anything torn mid-write is dropped, and an interrupted compaction never
loses the previous generation.
"""

import pytest

from repro.api import Database, DatabaseOptions
from repro.datamodel.errors import StorageError
from repro.snapshot import Catalog, DeltaOp, append_delta, read_snapshot
from repro.snapshot.deltas import read_delta_ops
from repro.snapshot.format import SnapshotReader

from .harness import DATASETS, assert_equivalent, write_source

FRAGMENT = DATASETS["figure1"]["fragments"][0]
FRAGMENT2 = DATASETS["figure1"]["fragments"][1]


@pytest.fixture()
def collection(tmp_path):
    """A catalog collection plus its logical model."""
    source, model = write_source(tmp_path, "figure1")
    catalog = Catalog(tmp_path / "catalog", create=True)
    catalog.ingest("docs", source)
    return catalog, model


def _open(catalog, **overrides):
    return Database.open(
        snapshot="docs",
        options=DatabaseOptions(catalog=catalog.root, backend="indexed"),
        **overrides,
    )


def _mutate_and_close(catalog, model, ops):
    db = _open(catalog)
    try:
        for op, name, xml in ops:
            if op == "put":
                db.put(name, xml)
                model.put(name, xml)
            elif op == "delete":
                db.delete(name)
                model.delete(name)
            else:
                db.replace(name, xml)
                model.replace(name, xml)
    finally:
        db.close()


def test_deltas_persist_across_reopen(collection):
    catalog, model = collection
    _mutate_and_close(
        catalog,
        model,
        [("put", "memo", FRAGMENT), ("replace", "memo", FRAGMENT2)],
    )
    db = _open(catalog)
    try:
        assert db.stats()["writes"]["pending_deltas"] == 2
        assert_equivalent(db, model, "indexed", "figure1", "reopen-replays")
    finally:
        db.close()
    # Compaction folds the delta tail into a fresh dense base …
    catalog.compact("docs")
    assert read_snapshot(catalog.bundle_path("docs")).delta_count == 0
    db = _open(catalog)
    try:
        assert db.stats()["writes"]["pending_deltas"] == 0
        assert_equivalent(db, model, "indexed", "figure1", "compacted")
    finally:
        db.close()


def test_torn_delta_tail_is_dropped_not_fatal(collection):
    """Kill mid-append: the unacknowledged tail vanishes on reopen."""
    catalog, model = collection
    _mutate_and_close(catalog, model, [("put", "memo", FRAGMENT)])
    bundle = catalog.bundle_path("docs")
    intact = bundle.stat().st_size

    # The crash: a second append that only half-hits the disk.
    append_delta(bundle, DeltaOp("put", "torn", FRAGMENT2))
    torn = bundle.read_bytes()
    bundle.write_bytes(torn[: intact + (len(torn) - intact) // 2])

    # Strict readers refuse; tolerant readers drop exactly the tail.
    with pytest.raises(StorageError):
        SnapshotReader.open(bundle)
    reader = SnapshotReader.open(bundle, tolerate_torn_tail=True)
    assert reader.torn_tail and reader.valid_size == intact
    assert [op.name for op in read_delta_ops(reader)] == ["memo"]

    # The facade serves the acknowledged prefix byte-identically.
    db = _open(catalog)
    try:
        assert "torn" not in db.documents()
        assert_equivalent(db, model, "indexed", "figure1", "post-torn")
        # … and the next durable append reclaims the torn bytes, so
        # strict readers accept the bundle again.
        db.put("after-crash", FRAGMENT2)
        model.put("after-crash", FRAGMENT2)
    finally:
        db.close()
    SnapshotReader.open(bundle)
    db = _open(catalog)
    try:
        assert_equivalent(db, model, "indexed", "figure1", "post-reclaim")
    finally:
        db.close()


def test_crash_between_fingerprint_drop_and_delta_append(
    collection, monkeypatch
):
    """Kill after note_mutation, before the delta lands.

    The bundle is unmutated, so serving it is correct; the only loss
    is the warm-start fingerprint — strictly conservative.
    """
    catalog, model = collection
    import repro.api.database as database_module

    def die(path, op, **kwargs):
        raise KeyboardInterrupt("crash before the delta hits the disk")

    monkeypatch.setattr(database_module, "append_delta", die)
    db = _open(catalog)
    with pytest.raises(KeyboardInterrupt):
        db.put("memo", FRAGMENT)
    db.close()
    monkeypatch.undo()

    assert catalog.info("docs").get("mutated") is True
    assert "source_bytes" not in catalog.info("docs")
    db = _open(catalog)
    try:
        assert "memo" not in db.documents()
        assert_equivalent(db, model, "indexed", "figure1", "pre-append crash")
    finally:
        db.close()


def test_crash_during_compaction_bundle_write(collection, monkeypatch):
    """Kill inside the compacted bundle write: deltas keep serving."""
    catalog, model = collection
    _mutate_and_close(catalog, model, [("put", "memo", FRAGMENT)])

    import repro.snapshot.catalog as catalog_module

    def die(*args, **kwargs):
        raise KeyboardInterrupt("power loss mid-write")

    monkeypatch.setattr(catalog_module, "write_snapshot", die)
    with pytest.raises(KeyboardInterrupt):
        catalog.compact("docs")
    monkeypatch.undo()

    assert not list(catalog.root.glob("*.tmp")), "temp bundle left behind"
    db = _open(catalog)
    try:
        assert db.stats()["writes"]["pending_deltas"] == 1
        assert_equivalent(db, model, "indexed", "figure1", "mid-write crash")
    finally:
        db.close()


def test_crash_between_bundle_replace_and_manifest_flip(
    collection, monkeypatch
):
    """Kill after the compacted bundle landed, before the manifest flip.

    The manifest still describes the previous generation, but the
    bundle on disk is the compacted one — which answers identically by
    construction, so recovery needs no repair step at all.
    """
    catalog, model = collection
    _mutate_and_close(
        catalog,
        model,
        [("put", "memo", FRAGMENT), ("delete", "seed-0000", None)],
    )

    real_write = Catalog._write_manifest

    def die(self, collections):
        raise KeyboardInterrupt("killed before the manifest flip")

    monkeypatch.setattr(Catalog, "_write_manifest", die)
    with pytest.raises(KeyboardInterrupt):
        catalog.compact("docs")
    monkeypatch.setattr(Catalog, "_write_manifest", real_write)

    stale_meta = catalog.info("docs")
    db = _open(catalog)
    try:
        assert db.stats()["writes"]["pending_deltas"] == 0
        assert_equivalent(db, model, "indexed", "figure1", "pre-flip crash")
        # A later mutation + compaction completes the interrupted cycle.
        db.put("after", FRAGMENT2)
        model.put("after", FRAGMENT2)
    finally:
        db.close()
    meta = catalog.compact("docs")
    assert meta["generation"] > stale_meta["generation"]
    db = _open(catalog)
    try:
        assert_equivalent(db, model, "indexed", "figure1", "recovered")
    finally:
        db.close()


def test_crash_before_flip_of_reshard_compaction(collection, monkeypatch):
    """Kill a shards=N re-balance before the flip: monolithic survives."""
    catalog, model = collection
    _mutate_and_close(catalog, model, [("put", "memo", FRAGMENT)])

    real_write = Catalog._write_manifest

    def die(self, collections):
        raise KeyboardInterrupt("killed before the manifest flip")

    monkeypatch.setattr(Catalog, "_write_manifest", die)
    with pytest.raises(KeyboardInterrupt):
        catalog.compact("docs", shards=2)
    monkeypatch.setattr(Catalog, "_write_manifest", real_write)

    # The manifest still serves the monolithic bundle, deltas intact.
    assert catalog.info("docs").get("shards") is None
    db = _open(catalog)
    try:
        assert_equivalent(db, model, "indexed", "figure1", "reshard crash")
    finally:
        db.close()
