"""Mutate-vs-rebuild differential harness for the live write path.

The correctness contract of live writes is *equivalence with a rebuild
from scratch*: after any sequence of put/delete/replace, every query
surface must answer exactly as a fresh store built from the surviving
documents would.  The harness keeps that oracle as a logical model — an
ordered ``name → fragment XML`` map mirroring the mutation semantics
(puts append, replaces move the document to the tail, deletes remove) —
and materializes it on demand by serializing the fragments under the
original root tag, re-parsing and Monet-transforming.

OID bridge.  A mutated monolithic store serves raw (gappy) OIDs; the
rebuild assigns dense ones.  ``first_oid + store.live_position(oid)``
is the canonical bijection between the two (identity on a dense store),
so answers are compared after mapping every OID-valued cell through it.
Sharded serving re-compacts on each mutation and a ``compact()`` call
re-densifies a monolithic store, making the bijection the identity —
truly byte-identical answers.
"""

import random
from collections import OrderedDict

from repro.api import Database, DatabaseOptions, NearestRequest, QueryRequest
from repro.core.engine import NearestConceptEngine
from repro.datamodel.parser import parse_document
from repro.datamodel.serializer import escape_attribute, serialize, serialize_node
from repro.datasets import (
    DblpConfig,
    MultimediaConfig,
    PlaysConfig,
    dblp_document,
    figure1_document,
    multimedia_document,
    plays_document,
)
from repro.datasets.randomtree import random_document
from repro.query.executor import QueryProcessor

BACKENDS = ("steered", "indexed")

#: ``None`` is a monolithic open; integers are in-process shard counts.
SHARD_MODES = (None, 1, 2, 4)


def _fragment(tag, pairs):
    """A small two-level fragment: ``<tag><k>v</k>...</tag>``."""
    body = "".join(f"<{k}>{v}</{k}>" for k, v in pairs)
    return f"<{tag}>{body}</{tag}>"


# Per dataset: builder, nearest term tuples, query texts, and a pool of
# put/replace fragments that *overlap* the query vocabulary, so
# mutations actually move answers.
DATASETS = {
    "figure1": {
        "build": figure1_document,
        "terms": [("Bit", "1999"), ("Bob", "Byte")],
        "queries": [
            "select meet($a,$b) from # $a, # $b "
            "where $a contains 'Bit' and $b contains '1999'",
            "select $a, tag($a) from # $a where $a contains 'Bit'",
        ],
        "fragments": [
            _fragment("institute", [("name", "Bit Lab"), ("year", "1999")]),
            _fragment("book", [("author", "Bob"), ("title", "Byte Bit")]),
            _fragment("article", [("title", "Bit Hacks"), ("year", "1999")]),
            _fragment("book", [("author", "Alice"), ("year", "2001")]),
        ],
    },
    "plays": {
        "build": lambda: plays_document(
            PlaysConfig(plays=2, acts_per_play=2, scenes_per_act=2)
        ),
        "terms": [("crown", "ghost"), ("love", "storm")],
        "queries": [
            "select meet($a,$b) from # $a, # $b "
            "where $a contains 'crown' and $b contains 'ghost'",
            "select tag($a), path($a) from # $a where $a contains 'storm'",
        ],
        "fragments": [
            _fragment("play", [("title", "The crown"), ("line", "ghost storm")]),
            _fragment("play", [("title", "love"), ("line", "crown at night")]),
            _fragment("interlude", [("line", "storm and ghost")]),
        ],
    },
    "dblp": {
        "build": lambda: dblp_document(
            DblpConfig(papers_per_proceedings=4, articles_per_year=2)
        ),
        "terms": [("ICDE", "1999"), ("VLDB", "1994")],
        "queries": [
            "select meet($a,$b) from # $a, # $b "
            "where $a contains 'ICDE' and $b contains '1999'",
            "select distinct tag($a) from # $a where $a contains 'VLDB'",
        ],
        "fragments": [
            _fragment(
                "article", [("title", "ICDE retrospective"), ("year", "1999")]
            ),
            _fragment(
                "inproceedings", [("booktitle", "VLDB"), ("year", "1994")]
            ),
            _fragment("proceedings", [("booktitle", "ICDE 1999")]),
        ],
    },
    "multimedia": {
        "build": lambda: multimedia_document(MultimediaConfig(items=8)),
        "terms": [("wavelet", "texture"), ("motion", "region")],
        "queries": [
            "select meet($a,$b) from # $a, # $b "
            "where $a contains 'wavelet' and $b contains 'texture'",
        ],
        "fragments": [
            _fragment(
                "item", [("feature", "wavelet"), ("segment", "texture")]
            ),
            _fragment("item", [("feature", "motion region wavelet")]),
        ],
    },
    "random": {
        "build": lambda: random_document(7, nodes=800, max_children=4),
        "terms": [("wavelet", "texture"), ("histogram", "contour")],
        "queries": [
            "select meet($a,$b) from # $a, # $b "
            "where $a contains 'wavelet' and $b contains 'texture'",
        ],
        "fragments": [
            _fragment("record", [("field", "wavelet texture")]),
            _fragment("group", [("field", "histogram contour wavelet")]),
        ],
    },
}

# Every option set pins ``limit``: the envelope default (10) differs
# from the raw engine default (unlimited), and both sides must ask the
# same question.
NEAREST_OPTIONS = (
    {"limit": 10},
    {"limit": 5},
    {"limit": 10, "exclude_root": True, "require_all_terms": True},
)


class LogicalModel:
    """The rebuild-from-scratch oracle as an ordered name → XML map."""

    def __init__(self, document):
        root = document.root
        self.root_tag = root.label
        self.root_attributes = dict(root.attributes)
        self.first_oid = 1
        self.fragments = OrderedDict(
            (f"seed-{index:04d}", serialize_node(child))
            for index, child in enumerate(root.children)
        )

    # -- mutation semantics (mirrors Database.put/delete/replace) -------
    def put(self, name, xml):
        assert name not in self.fragments, name
        self.fragments[name] = xml

    def delete(self, name):
        del self.fragments[name]

    def replace(self, name, xml):
        # A replace deletes then re-appends: the document moves to the
        # tail of document order, exactly like the live store.
        self.fragments.pop(name, None)
        self.fragments[name] = xml

    def names(self):
        return list(self.fragments)

    # -- materialization -------------------------------------------------
    def oracle_xml(self):
        attributes = "".join(
            f' {name}="{escape_attribute(value)}"'
            for name, value in self.root_attributes.items()
        )
        body = "".join(self.fragments.values())
        return f"<{self.root_tag}{attributes}>{body}</{self.root_tag}>"

    def oracle_store(self):
        from repro.monet.transform import monet_transform

        return monet_transform(
            parse_document(self.oracle_xml(), first_oid=self.first_oid)
        )


def write_source(tmp_path, dataset_name):
    """Serialize the dataset to an XML file (the ingest/open source)."""
    document = DATASETS[dataset_name]["build"]()
    path = tmp_path / f"{dataset_name}.xml"
    path.write_text(serialize(document), encoding="utf-8")
    return path, LogicalModel(document)


def open_live(source, *, backend, shards=None, cache=None):
    """Open the writable database under test (in-process, workers=0)."""
    return Database.open(
        str(source),
        options=DatabaseOptions(backend=backend, shards=shards, cache=cache),
    )


def oid_mapper(db):
    """The live-store → rebuild-oracle OID bijection for this database."""
    store = db._base_store if db.sharded is not None else db.store
    first = store.first_oid
    return lambda oid: first + store.live_position(oid)


def _oid_column(name):
    """Whether a query result column holds OIDs (vs tags/paths/counts)."""
    return name.startswith("$") or name.startswith("meet(")


# -- the three query surfaces, canonicalized ---------------------------
def live_nearest(db, terms, options):
    envelope = db.nearest(
        NearestRequest(terms=tuple(terms), snippets=False, **options)
    )
    mapper = oid_mapper(db)
    return [
        {
            **answer,
            "oid": mapper(answer["oid"]),
            "origins": [mapper(oid) for oid in answer["origins"]],
        }
        for answer in envelope.answers
    ]


def oracle_nearest(engine, terms, options):
    return [
        {
            "oid": concept.oid,
            "tag": concept.tag,
            "path": str(concept.path),
            "joins": concept.joins,
            "spread": concept.spread,
            "depth": concept.depth,
            "origins": list(concept.origins),
            "terms": list(concept.terms),
        }
        for concept in engine.nearest_concepts(*terms, **options)
    ]


def live_search(db, term):
    envelope = db.search(term)
    mapper = oid_mapper(db)
    return [{**answer, "oid": mapper(answer["oid"])} for answer in envelope.answers]


def oracle_search(engine, store, term):
    return [
        {
            "oid": oid,
            "tag": store.summary.label(store.pid_of(oid)),
            "path": str(store.path_of(oid)),
        }
        for oid in sorted(engine.term_hits(term).oids())
    ]


def live_query(db, text):
    envelope = db.query(QueryRequest(text=text))
    mapper = oid_mapper(db)
    oid_columns = [_oid_column(name) for name in envelope.columns]
    rows = [
        tuple(
            mapper(cell) if is_oid else cell
            for cell, is_oid in zip(row, oid_columns)
        )
        for row in envelope.rows
    ]
    return list(envelope.columns), rows


def oracle_query(processor, text):
    result = processor.execute(text)
    return list(result.columns), [tuple(row) for row in result.rows]


def assert_equivalent(db, model, backend, dataset_name, context=""):
    """Every query surface answers exactly as a rebuild from scratch."""
    spec = DATASETS[dataset_name]
    oracle_store = model.oracle_store()
    engine = NearestConceptEngine(oracle_store, backend=backend)
    processor = QueryProcessor(oracle_store, backend=backend)

    # The registry itself must match: same names, same document order.
    live_docs = db.documents()
    expected_order = model.names()
    assert (
        sorted(live_docs) == sorted(expected_order)
    ), f"{context}: registry names diverged"
    by_low = sorted(live_docs, key=lambda name: live_docs[name][0])
    assert by_low == expected_order, f"{context}: document order diverged"

    for terms in spec["terms"]:
        for options in NEAREST_OPTIONS:
            expected = oracle_nearest(engine, terms, options)
            actual = live_nearest(db, terms, options)
            assert actual == expected, (
                f"{context}: nearest({terms}, {options}) diverged from "
                f"the rebuild oracle"
            )
        for term in terms:
            assert live_search(db, term) == oracle_search(
                engine, oracle_store, term
            ), f"{context}: search({term!r}) diverged from the rebuild oracle"
    for text in spec["queries"]:
        assert live_query(db, text) == oracle_query(processor, text), (
            f"{context}: query {text!r} diverged from the rebuild oracle"
        )


class MutationFuzzer:
    """Seeded generator of valid put/delete/replace sequences."""

    def __init__(self, model, dataset_name, seed):
        self.model = model
        self.rng = random.Random(seed)
        self.fragments = DATASETS[dataset_name]["fragments"]
        self.counter = 0

    def _fresh_name(self):
        self.counter += 1
        return f"doc-{self.counter:04d}"

    def _fragment(self):
        return self.rng.choice(self.fragments)

    def step(self):
        """One random valid mutation: ``(op, name, xml_or_None)``."""
        names = self.model.names()
        ops = ["put", "replace"]
        # Keep at least one document around so every surface stays
        # exercised (an empty collection is covered by targeted tests).
        if len(names) > 1:
            ops.extend(["delete", "delete"])
        op = self.rng.choice(ops)
        if op == "put":
            return ("put", self._fresh_name(), self._fragment())
        if op == "delete":
            return ("delete", self.rng.choice(names), None)
        # Half of replaces are upserts of brand-new names.
        if names and self.rng.random() < 0.5:
            return ("replace", self.rng.choice(names), self._fragment())
        return ("replace", self._fresh_name(), self._fragment())


def apply_step(db, model, step):
    """Apply one fuzzer step to both the live database and the model."""
    op, name, xml = step
    if op == "put":
        receipt = db.put(name, xml)
        model.put(name, xml)
    elif op == "delete":
        receipt = db.delete(name)
        model.delete(name)
    else:
        receipt = db.replace(name, xml)
        model.replace(name, xml)
    return receipt
