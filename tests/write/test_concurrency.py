"""Readers hammer the HTTP service while a writer mutates: no torn answers.

Eight reader threads loop ``POST /v1/nearest``, ``POST /v1/search`` and
``GET /v1/stats`` while one writer applies a mutation sequence.  The
write path serializes behind the database's readers–writer lock, so
every response must equal the canonical answer of *some* state in the
mutation history — the pre- or post-state of whichever mutation it
raced, never a blend.  The writer records each state's canonical
answers as it goes; readers check membership.
"""

import json
import threading
import urllib.request

from repro.api import Database, DatabaseOptions, NearestRequest, ReproServer
from repro.snapshot import Catalog

from .harness import DATASETS, write_source

READERS = 8
REQUESTS_PER_READER = 25
TERMS = ("Bit", "1999")
SEARCH_TERM = "Bit"

FRAGMENTS = DATASETS["figure1"]["fragments"]


def _canonical(db):
    """The full answer surface of the current state, as plain JSON."""
    nearest = db.nearest(
        NearestRequest(terms=TERMS, limit=10, snippets=False)
    ).answers
    search = db.search(SEARCH_TERM).answers
    return json.dumps(
        {"nearest": list(nearest), "search": list(search)}, sort_keys=True
    )


def _get(url):
    with urllib.request.urlopen(url) as response:
        return response.status, json.loads(response.read())


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def test_readers_never_see_torn_answers(tmp_path):
    source, _model = write_source(tmp_path, "figure1")
    catalog = Catalog(tmp_path / "catalog", create=True)
    catalog.ingest("docs", source)
    db = Database.open(
        snapshot="docs",
        options=DatabaseOptions(
            catalog=catalog.root, backend="indexed", cache=64
        ),
    )

    valid_states = {_canonical(db)}
    states_lock = threading.Lock()
    writer_done = threading.Event()
    failures = []

    mutations = [
        ("put", "doc-a", FRAGMENTS[0]),
        ("put", "doc-b", FRAGMENTS[1]),
        ("replace", "doc-a", FRAGMENTS[2]),
        ("delete", "doc-b", None),
        ("put", "doc-c", FRAGMENTS[3 % len(FRAGMENTS)]),
        ("delete", "doc-a", None),
        ("replace", "doc-c", FRAGMENTS[0]),
        ("put", "doc-d", FRAGMENTS[1]),
    ]

    def writer():
        try:
            for op, name, xml in mutations:
                if op == "put":
                    db.put(name, xml)
                elif op == "delete":
                    db.delete(name)
                else:
                    db.replace(name, xml)
                # Record the new state's canonical answers before the
                # next mutation; readers racing this capture can only
                # observe this state or an older one — both recorded.
                with states_lock:
                    valid_states.add(_canonical(db))
        except Exception as exc:  # pragma: no cover - failure reporting
            failures.append(f"writer: {exc!r}")
        finally:
            writer_done.set()

    def reader(server_url, index):
        try:
            for _ in range(REQUESTS_PER_READER):
                status, body = _post(
                    f"{server_url}/v1/nearest",
                    {"terms": list(TERMS), "limit": 10},
                )
                assert status == 200
                status, search_body = _post(
                    f"{server_url}/v1/search", {"term": SEARCH_TERM}
                )
                assert status == 200
                observed = json.dumps(
                    {
                        "nearest": list(body["answers"]),
                        "search": list(search_body["answers"]),
                    },
                    sort_keys=True,
                )
                # Tiny race: nearest and search are two requests, so a
                # mutation may land between them; each half must still
                # match SOME recorded state.
                with states_lock:
                    states = set(valid_states)
                halves_ok = any(
                    json.loads(state)["nearest"] == body["answers"]
                    for state in states
                ) and any(
                    json.loads(state)["search"] == search_body["answers"]
                    for state in states
                )
                if observed not in states and not halves_ok:
                    failures.append(
                        f"reader {index}: torn answer {observed[:200]}"
                    )
                status, stats = _get(f"{server_url}/v1/stats")
                assert status == 200
                writes = stats["collections"]["docs"]["writes"]
                if not (0 <= writes["mutations"] <= len(mutations)):
                    failures.append(
                        f"reader {index}: stats out of range {writes}"
                    )
        except Exception as exc:  # pragma: no cover - failure reporting
            failures.append(f"reader {index}: {exc!r}")

    server = ReproServer({"docs": db}, port=0, close_databases=True)
    with server:
        threads = [
            threading.Thread(target=reader, args=(server.url(""), index))
            for index in range(READERS)
        ]
        writer_thread = threading.Thread(target=writer)
        for thread in threads:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=60)
        for thread in threads:
            thread.join(timeout=60)
        assert writer_done.is_set(), "writer never finished"

        assert not failures, failures[:5]

        # Quiesced: the final answers equal the last recorded state and
        # the counters add up exactly.
        status, stats = _get(server.url("/v1/stats"))
        writes = stats["collections"]["docs"]["writes"]
        assert writes["mutations"] == len(mutations)
        assert writes["documents"] == len(db.documents())
        status, body = _post(
            server.url("/v1/nearest"), {"terms": list(TERMS), "limit": 10}
        )
        final = _canonical(db)
        assert json.loads(final)["nearest"] == body["answers"]
