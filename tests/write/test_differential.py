"""Mutate-vs-rebuild differential acceptance for the live write path.

Every dataset × backend × shard-mode combination applies a scripted
mutation sequence and, after **every** step, asserts that all three
query surfaces (nearest, full-text search, query language) answer
exactly as a store rebuilt from scratch from the surviving documents —
answer sets, ranking order and every OID after the documented
live-position bijection (the identity for sharded serving and after
``compact()``).
"""

import pytest

from .harness import (
    BACKENDS,
    DATASETS,
    SHARD_MODES,
    MutationFuzzer,
    apply_step,
    assert_equivalent,
    open_live,
    write_source,
)


def _scripted_steps(dataset_name, model):
    """A deterministic sequence hitting put, replace and delete."""
    fragments = DATASETS[dataset_name]["fragments"]
    seeds = model.names()
    steps = [
        ("put", "new-0001", fragments[0]),
        ("put", "new-0002", fragments[-1]),
        ("replace", "new-0001", fragments[1 % len(fragments)]),
        ("delete", "new-0002", None),
    ]
    if len(seeds) > 1:
        steps.append(("delete", seeds[0], None))
        steps.append(("replace", seeds[1], fragments[0]))
    return steps


@pytest.mark.parametrize("dataset", list(DATASETS))
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("shards", SHARD_MODES, ids=lambda s: f"shards={s}")
def test_mutations_match_rebuild(tmp_path, dataset, backend, shards):
    source, model = write_source(tmp_path, dataset)
    db = open_live(source, backend=backend, shards=shards)
    try:
        context = f"{dataset}/{backend}/shards={shards}"
        assert_equivalent(db, model, backend, dataset, f"{context}/baseline")
        for index, step in enumerate(_scripted_steps(dataset, model)):
            apply_step(db, model, step)
            assert_equivalent(
                db, model, backend, dataset, f"{context}/step{index}:{step[0]}"
            )
        # compact() folds tombstones: OIDs become *literally* the
        # rebuild oracle's, and answers must not move at all.
        db.compact()
        assert_equivalent(db, model, backend, dataset, f"{context}/compacted")
        store = db._base_store if db.sharded is not None else db.store
        assert store.dead_count == 0
        assert store.node_count == model.oracle_store().node_count
    finally:
        db.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_mutation_receipts_and_stats(tmp_path, backend):
    source, model = write_source(tmp_path, "figure1")
    db = open_live(source, backend=backend)
    try:
        fragment = DATASETS["figure1"]["fragments"][0]
        receipt = db.put("memo", fragment)
        assert receipt["op"] == "put" and receipt["name"] == "memo"
        low, high = receipt["span"]
        assert db.documents()["memo"] == [low, high]
        writes = db.stats()["writes"]
        assert writes["mutations"] == 1
        assert writes["documents"] == len(model.names()) + 1
        deleted = db.delete("memo")
        assert deleted["span"] == [low, high]
        assert db.stats()["writes"]["dead_fraction"] > 0
        compacted = db.compact()
        assert compacted["reclaimed"] == high - low + 1
        assert db.stats()["writes"]["dead_fraction"] == 0
    finally:
        db.close()


def test_duplicate_and_unknown_names_reject_cleanly(tmp_path):
    from repro.datamodel.errors import (
        DuplicateDocumentError,
        UnknownDocumentError,
    )

    source, model = write_source(tmp_path, "figure1")
    db = open_live(source, backend="indexed")
    try:
        fragment = DATASETS["figure1"]["fragments"][0]
        db.put("memo", fragment)
        model.put("memo", fragment)
        with pytest.raises(DuplicateDocumentError):
            db.put("memo", fragment)
        with pytest.raises(UnknownDocumentError):
            db.delete("ghost")
        # A parse error must leave the collection untouched — even for
        # replace, which validates before deleting.
        from repro.datamodel.errors import ReproError

        with pytest.raises(ReproError):
            db.replace("memo", "<broken><unclosed></broken>")
        assert_equivalent(db, model, "indexed", "figure1", "after-rejects")
    finally:
        db.close()


def test_seeded_short_fuzz_all_datasets(tmp_path):
    """A quick 12-step seeded fuzz per dataset, monolithic + sharded."""
    for dataset in DATASETS:
        for shards in (None, 2):
            source, model = write_source(tmp_path, dataset)
            db = open_live(source, backend="indexed", shards=shards)
            fuzzer = MutationFuzzer(model, dataset, seed=1234)
            try:
                for index in range(12):
                    step = fuzzer.step()
                    apply_step(db, model, step)
                    assert_equivalent(
                        db,
                        model,
                        "indexed",
                        dataset,
                        f"fuzz[seed=1234]/{dataset}/shards={shards}/"
                        f"step{index}:{step[0]}",
                    )
            finally:
                db.close()
