"""Regression: a failed sharded open must not leak temp shard bundles.

``Database._open_sharded_store`` with ``workers > 0`` materializes warm
shard bundles into a ``repro-shards-*`` temp directory before the pool
spins up.  A failure anywhere after that materialization — executor
spin-up, plan validation, ``ShardedCollection`` wiring — used to leave
the directory behind, because cleanup only ran through ``close()`` on
a successfully constructed instance.
"""

import pytest

import repro.api.database as database_module
from repro.api import Database, DatabaseOptions

from .harness import write_source


def _recorded_tempdirs(monkeypatch):
    """Record every repro-shards temp dir the open creates."""
    import tempfile as tempfile_module

    created = []
    real_mkdtemp = tempfile_module.mkdtemp

    def recording_mkdtemp(*args, **kwargs):
        path = real_mkdtemp(*args, **kwargs)
        created.append(path)
        return path

    monkeypatch.setattr(
        database_module.tempfile, "mkdtemp", recording_mkdtemp
    )
    return created


def test_failed_pool_spinup_removes_temp_bundles(tmp_path, monkeypatch):
    source, _model = write_source(tmp_path, "figure1")
    created = _recorded_tempdirs(monkeypatch)

    class Boom(RuntimeError):
        pass

    def exploding_executor(*args, **kwargs):
        raise Boom("pool failed to spawn")

    monkeypatch.setattr(database_module, "ParallelExecutor", exploding_executor)
    with pytest.raises(Boom):
        Database.open(
            str(source),
            options=DatabaseOptions(shards=2, workers=2),
        )
    assert created, "test never reached bundle materialization"
    import os

    for path in created:
        assert not os.path.exists(path), f"temp shard bundles leaked: {path}"


def test_successful_open_cleans_up_on_close(tmp_path, monkeypatch):
    source, _model = write_source(tmp_path, "figure1")
    created = _recorded_tempdirs(monkeypatch)
    db = Database.open(
        str(source), options=DatabaseOptions(shards=2, workers=1)
    )
    try:
        assert created and all(
            __import__("os").path.exists(path) for path in created
        )
    finally:
        db.close()
    import os

    for path in created:
        assert not os.path.exists(path), f"temp shard bundles leaked: {path}"
