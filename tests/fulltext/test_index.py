"""Unit tests for the inverted index over string associations."""

import pytest

from repro.datasets.figure1 import FIGURE1_OIDS as O
from repro.fulltext.index import FullTextIndex


@pytest.fixture(scope="module")
def index(request):
    figure1_store = request.getfixturevalue("figure1_store")
    return FullTextIndex(figure1_store)


class TestBuild:
    def test_indexes_every_string_association(self, index):
        # Figure 1: 7 cdata strings + 2 key attributes
        assert index.indexed_associations == 9

    def test_vocabulary(self, index):
        vocabulary = set(index.vocabulary())
        assert {"ben", "bit", "bob", "byte", "1999", "hack", "bb99"} <= vocabulary

    def test_document_frequency(self, index):
        assert index.document_frequency("1999") == 2
        assert index.document_frequency("Ben") == 1
        assert index.document_frequency("absent") == 0


class TestSearch:
    def test_hits_are_cdata_nodes(self, index):
        assert index.search("Ben").oids() == {O["cdata_ben"]}
        assert index.search("1999").oids() == {
            O["cdata_1999_a"],
            O["cdata_1999_b"],
        }

    def test_attribute_hits_are_element_nodes(self, index):
        assert index.search("BB99").oids() == {O["article1"]}

    def test_case_insensitive_default(self, index):
        assert index.search("ben").oids() == index.search("BEN").oids()

    def test_multiword_string_tokens(self, index):
        assert index.search("Bob").oids() == {O["cdata_bob_byte"]}
        assert index.search("Byte").oids() == {O["cdata_bob_byte"]}

    def test_miss(self, index):
        hits = index.search("zzz")
        assert not hits and len(hits) == 0

    def test_by_pid_groups_by_element_path(self, index, figure1_store):
        grouped = index.search("1999").by_pid()
        assert len(grouped) == 1
        (pid,) = grouped
        assert (
            str(figure1_store.summary.path(pid))
            == "bibliography/institute/article/year/cdata"
        )
        assert sorted(grouped[pid]) == [O["cdata_1999_a"], O["cdata_1999_b"]]

    def test_by_pid_is_memoized_and_read_only(self, index):
        hits = index.search("1999")
        assert hits.by_pid() is hits.by_pid()
        with pytest.raises(TypeError):
            hits.by_pid()[999] = [1]


class TestCompoundSearch:
    def test_search_any_unions(self, index):
        hits = index.search_any(["Ben", "Bob"])
        assert hits.oids() == {O["cdata_ben"], O["cdata_bob_byte"]}

    def test_search_any_dedupes(self, index):
        hits = index.search_any(["Bob", "Byte"])
        assert len(hits.postings) == 1

    def test_search_conjunctive(self, index):
        assert index.search_conjunctive(["Bob", "Byte"]).oids() == {
            O["cdata_bob_byte"]
        }
        assert index.search_conjunctive(["Bob", "Bit"]).oids() == set()

    def test_search_conjunctive_empty_terms(self, index):
        assert index.search_conjunctive([]).oids() == set()

    def test_search_prefix(self, index):
        hits = index.search_prefix("ha")
        # 'hack' (How to Hack) and 'hacking' (Hacking & RSI)
        assert hits.oids() == {O["cdata_how_to_hack"], O["cdata_hacking_rsi"]}


class TestCaseSensitiveIndex:
    def test_case_sensitive_build(self, figure1_store):
        index = FullTextIndex(figure1_store, case_sensitive=True)
        assert index.search("Ben").oids() == {O["cdata_ben"]}
        assert index.search("ben").oids() == set()
