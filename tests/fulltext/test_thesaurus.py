"""Unit tests for thesaurus-based broadening (§4 extension)."""

import pytest

from repro.core import NearestConceptEngine
from repro.datamodel.parser import parse_document
from repro.datasets.figure1 import FIGURE1_OIDS as O
from repro.fulltext.search import SearchEngine
from repro.fulltext.thesaurus import BroadeningSearch, Thesaurus, expand_term
from repro.monet import monet_transform


class TestThesaurus:
    def test_synonym_ring_symmetric(self):
        thesaurus = Thesaurus().add_synonyms("article", "paper", "publication")
        assert thesaurus.synonyms("paper") == {"article", "publication"}
        assert thesaurus.synonyms("article") == {"paper", "publication"}

    def test_case_folding(self):
        thesaurus = Thesaurus().add_synonyms("Hack", "Crack")
        assert thesaurus.synonyms("hack") == {"crack"}
        assert "HACK" in thesaurus

    def test_broader_is_one_way(self):
        thesaurus = Thesaurus().add_broader("icde", "conference")
        assert thesaurus.broader_terms("icde") == {"conference"}
        assert thesaurus.broader_terms("conference") == set()

    def test_from_rings(self):
        thesaurus = Thesaurus.from_rings([["a", "b"], ["x", "y", "z"]])
        assert thesaurus.synonyms("x") == {"y", "z"}

    def test_len_and_contains(self):
        thesaurus = Thesaurus().add_synonyms("a", "b")
        assert len(thesaurus) == 2
        assert "a" in thesaurus and "c" not in thesaurus
        assert 3 not in thesaurus


class TestExpandTerm:
    def make(self):
        return (
            Thesaurus()
            .add_synonyms("hack", "crack")
            .add_synonyms("crack", "exploit")
            .add_broader("hack", "activity")
        )

    def test_one_hop(self):
        expansion = expand_term(self.make(), "hack")
        assert expansion == ["hack", "crack"]

    def test_transitive(self):
        expansion = expand_term(self.make(), "hack", transitive=True)
        assert expansion == ["hack", "crack", "exploit"]

    def test_include_broader(self):
        expansion = expand_term(self.make(), "hack", include_broader=True)
        assert set(expansion) == {"hack", "activity", "crack"}

    def test_unknown_term_expands_to_itself(self):
        assert expand_term(Thesaurus(), "whatever") == ["whatever"]


class TestBroadeningSearch:
    def test_no_broadening_when_enough_hits(self, figure1_store):
        thesaurus = Thesaurus().add_synonyms("Ben", "Bob")
        search = BroadeningSearch(SearchEngine(figure1_store), thesaurus)
        hits, used = search.find("Ben")
        assert used == ["Ben"]
        assert hits.oids() == {O["cdata_ben"]}

    def test_broadens_on_miss(self, figure1_store):
        thesaurus = Thesaurus().add_synonyms("Benjamin", "Ben")
        search = BroadeningSearch(SearchEngine(figure1_store), thesaurus)
        hits, used = search.find("Benjamin")
        assert used == ["Benjamin", "ben"]
        assert hits.oids() == {O["cdata_ben"]}
        assert hits.term == "Benjamin"

    def test_min_hits_threshold(self, figure1_store):
        thesaurus = Thesaurus().add_synonyms("1999", "Bit")
        search = BroadeningSearch(
            SearchEngine(figure1_store), thesaurus, min_hits=3
        )
        hits, used = search.find("1999")
        # 2 plain hits < 3 → broadened with 'bit'
        assert len(used) == 2
        assert hits.oids() == {
            O["cdata_1999_a"],
            O["cdata_1999_b"],
            O["cdata_bit"],
        }

    def test_miss_without_synonyms_stays_empty(self, figure1_store):
        search = BroadeningSearch(SearchEngine(figure1_store), Thesaurus())
        hits, used = search.find("unicorn")
        assert not hits and used == ["unicorn"]


class TestEngineIntegration:
    def test_engine_broadens_scarce_terms(self, figure1_store):
        thesaurus = Thesaurus().add_synonyms("Benjamin", "Ben")
        engine = NearestConceptEngine(figure1_store, thesaurus=thesaurus)
        concepts = engine.nearest_concepts("Benjamin", "Bit")
        assert [c.oid for c in concepts] == [O["author1"]]
        # origins keep the *user's* term
        assert "Benjamin" in concepts[0].terms

    def test_engine_without_thesaurus_misses(self, figure1_store):
        engine = NearestConceptEngine(figure1_store)
        assert engine.nearest_concepts("Benjamin", "Bit") == []

    def test_broadening_respects_threshold(self):
        store = monet_transform(
            parse_document("<r><a>cat</a><b>feline</b></r>")
        )
        thesaurus = Thesaurus().add_synonyms("cat", "feline")
        engine = NearestConceptEngine(
            store, thesaurus=thesaurus, broaden_below=2
        )
        hits = engine.term_hits("cat")
        # 1 hit < 2 → broadened to include 'feline'
        assert len(hits.oids()) == 2
