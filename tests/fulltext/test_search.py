"""Unit tests for the search engine façade (contains semantics)."""

import pytest

from repro.datasets.figure1 import FIGURE1_OIDS as O
from repro.fulltext.search import SearchEngine, contains


class TestContains:
    def test_case_insensitive_default(self):
        assert contains("How to Hack", "hack")
        assert contains("How to Hack", "HOW TO")

    def test_case_sensitive(self):
        assert not contains("How to Hack", "hack", case_sensitive=True)
        assert contains("How to Hack", "Hack", case_sensitive=True)

    def test_substring_not_token(self):
        assert contains("Hacking", "Hack")


@pytest.fixture(scope="module")
def engine(request):
    return SearchEngine(request.getfixturevalue("figure1_store"))


class TestFind:
    def test_token_shaped_term_uses_index(self, engine):
        assert engine.find("Ben").oids() == {O["cdata_ben"]}

    def test_multi_word_term(self, engine):
        assert engine.find("Bob Byte").oids() == {O["cdata_bob_byte"]}

    def test_multi_word_requires_substring(self, engine):
        # 'Byte Bob' has both tokens but is not a substring.
        assert engine.find("Byte Bob").oids() == set()

    def test_partial_word_falls_back_to_scan(self, engine):
        # 'Hac' is a token prefix, not a token: scan path.
        assert engine.find("Hac").oids() == {
            O["cdata_how_to_hack"],
            O["cdata_hacking_rsi"],
        }

    def test_punctuation_term_scans(self, engine):
        assert engine.find("Hacking & RSI").oids() == {O["cdata_hacking_rsi"]}


class TestScan:
    def test_scan_attribute_values(self, engine):
        assert engine.scan("BK").oids() == {O["article2"]}

    def test_scan_no_match(self, engine):
        assert engine.scan("qqqq").oids() == set()

    def test_scan_is_substring_semantics(self, engine):
        assert engine.scan("999").oids() == {
            O["cdata_1999_a"],
            O["cdata_1999_b"],
        }


class TestCaseSensitiveEngine:
    def test_case_sensitive_find(self, figure1_store):
        engine = SearchEngine(figure1_store, case_sensitive=True)
        assert engine.find("Ben").oids() == {O["cdata_ben"]}
        assert engine.find("ben").oids() == set()
        assert engine.scan("BEN").oids() == set()
