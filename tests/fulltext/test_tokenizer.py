"""Unit tests for the tokenizer."""

from repro.fulltext.tokenizer import normalize, tokenize


class TestTokenize:
    def test_simple_words(self):
        assert tokenize("How to Hack") == ["how", "to", "hack"]

    def test_punctuation_split(self):
        assert tokenize("Hacking & RSI") == ["hacking", "rsi"]

    def test_numbers_kept(self):
        assert tokenize("ICDE 1999, pages 14-23") == [
            "icde",
            "1999",
            "pages",
            "14",
            "23",
        ]

    def test_case_sensitive_mode(self):
        assert tokenize("ICDE", case_sensitive=True) == ["ICDE"]
        assert tokenize("ICDE") == ["icde"]

    def test_empty_and_symbol_only(self):
        assert tokenize("") == []
        assert tokenize("&&& --- !!!") == []

    def test_leading_trailing_separators(self):
        assert tokenize("...word...") == ["word"]

    def test_unicode_letters(self):
        assert tokenize("García Müller") == ["garcía", "müller"]

    def test_mixed_alnum_tokens_stay_joined(self):
        assert tokenize("Schmidt99 BB99") == ["schmidt99", "bb99"]


class TestNormalize:
    def test_strips_and_lowers(self):
        assert normalize("  Bit ") == "bit"

    def test_case_sensitive(self):
        assert normalize(" Bit ", case_sensitive=True) == "Bit"
