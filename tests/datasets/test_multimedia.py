"""Unit tests for the synthetic multimedia generator and markers."""

import pytest

from repro.core.distance import distance
from repro.datasets.multimedia import (
    MultimediaConfig,
    marker_terms,
    multimedia_document,
    multimedia_with_markers,
)
from repro.fulltext.search import SearchEngine
from repro.monet.transform import monet_transform


class TestPlainDocument:
    def test_structure(self):
        doc = multimedia_document(MultimediaConfig(items=5))
        assert doc.root.label == "multimedia"
        assert len(doc.root.children) == 5
        item = doc.root.children[0]
        assert item.label == "item"
        assert {child.label for child in item.children} == {"metadata", "analysis"}

    def test_deep_nesting_supports_figure6_distances(self):
        doc = multimedia_document(MultimediaConfig(items=10))
        max_depth = max(doc.depth(oid) for oid in doc.iter_oids())
        assert max_depth >= 9  # room for double-digit leaf distances

    def test_deterministic(self):
        doc1 = multimedia_document(MultimediaConfig(items=5))
        doc2 = multimedia_document(MultimediaConfig(items=5))
        assert doc1.node_count == doc2.node_count


class TestMarkers:
    @pytest.mark.parametrize("planted_distance", list(range(0, 21)))
    def test_marker_distance_exact(self, multimedia_planted, planted_distance):
        store, planted = multimedia_planted
        terma, termb = planted[planted_distance]
        search = SearchEngine(store)
        hits_a = sorted(search.find(terma).oids())
        hits_b = sorted(search.find(termb).oids())
        assert len(hits_a) == 1 and len(hits_b) == 1
        assert distance(store, hits_a[0], hits_b[0]) == planted_distance

    def test_marker_terms_unique_per_distance(self):
        assert marker_terms(3) != marker_terms(4)
        terma, termb = marker_terms(7)
        assert terma != termb

    def test_too_many_markers_rejected(self):
        with pytest.raises(ValueError):
            multimedia_with_markers(list(range(10)), MultimediaConfig(items=3))

    def test_document_still_realistic(self, multimedia_planted):
        store, _planted = multimedia_planted
        labels = {
            store.summary.label(pid) for pid in store.summary.element_pids()
        }
        assert {"item", "scene", "region", "feature", "metadata"} <= labels
