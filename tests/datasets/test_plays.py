"""Unit + integration tests for the drama corpus (recursive labels)."""

import pytest

from repro.core import NearestConceptEngine
from repro.datasets.plays import PlaysConfig, plays_document
from repro.monet import monet_transform
from repro.monet.stats import collect_statistics


@pytest.fixture(scope="module")
def plays_store():
    config = PlaysConfig(plays=4, nested_scene_probability=1.0, max_nesting=2)
    return monet_transform(plays_document(config))


class TestStructure:
    def test_deterministic(self):
        doc1 = plays_document()
        doc2 = plays_document()
        assert doc1.node_count == doc2.node_count

    def test_recursive_scene_paths_exist(self, plays_store):
        nested = [
            str(path)
            for path in plays_store.summary.all_paths()
            if "scene/scene" in str(path)
        ]
        assert nested  # plays-within-plays materialized

    def test_statistics_show_document_centric_shape(self, plays_store):
        stats = collect_statistics(plays_store)
        assert stats.max_depth >= 7  # …/scene/scene/speech/line/cdata
        assert stats.node_count > 300


class TestMeetOverRecursiveLabels:
    def test_speaker_and_line_meet_in_speech(self, plays_store):
        engine = NearestConceptEngine(plays_store)
        # pick one speech's speaker and a word from its first line
        speech_oid = next(
            oid
            for oid in plays_store.iter_oids()
            if plays_store.summary.label(plays_store.pid_of(oid)) == "speech"
        )
        from repro.monet.reassembly import object_text

        words = object_text(plays_store, speech_oid).split()
        speaker, some_word = words[0], words[-1]
        # require both terms: plain Fig. 5 semantics would surface
        # same-term clusters ("exile … exile" in one speech) first —
        # the false-positive mode the paper itself reports.
        concepts = engine.nearest_concepts(
            speaker, some_word, require_all_terms=True
        )
        assert concepts
        top_text = object_text(plays_store, concepts[0].oid).lower()
        assert speaker.lower() in top_text
        assert some_word.lower() in top_text

    def test_wildcard_spans_recursive_nesting(self, plays_store):
        from repro.query import QueryProcessor

        processor = QueryProcessor(plays_store)
        result = processor.execute(
            "select distinct path($o) from plays/#/stagedir $o"
        )
        depths = {cell.count("/") for (cell,) in result.rows}
        assert len(depths) >= 2  # stagedirs at several nesting depths

    def test_meet_inside_nested_scene_stays_local(self, plays_store):
        """Terms co-occurring only inside a nested scene meet there,
        not at the outer scene."""
        engine = NearestConceptEngine(plays_store)
        inner_pid = next(
            pid
            for pid in plays_store.summary.element_pids()
            if str(plays_store.summary.path(pid)).endswith("scene/scene")
        )
        inner_oids = plays_store.oids_on_pid(inner_pid)
        assert inner_oids
        from repro.core import group_by_pid, meet_general

        # two speakers of the same nested scene
        inner = inner_oids[0]
        speakers = [
            oid
            for oid in plays_store.iter_oids()
            if plays_store.is_ancestor(inner, oid)
            and plays_store.summary.label(plays_store.pid_of(oid)) == "speaker"
        ]
        assert len(speakers) >= 2
        meets = meet_general(
            plays_store, group_by_pid(plays_store, speakers[:2])
        )
        (meet,) = meets
        assert plays_store.is_ancestor(inner, meet.oid)
