"""Unit tests pinning the Figure 1 example document."""

from repro.datasets.figure1 import FIGURE1_OIDS as O
from repro.datasets.figure1 import figure1_document


class TestShape:
    def test_node_count(self, figure1_doc):
        assert figure1_doc.node_count == 19

    def test_oid_symbol_table_consistent(self, figure1_doc):
        labels = {
            "bibliography": "bibliography",
            "institute": "institute",
            "article1": "article",
            "author1": "author",
            "firstname": "firstname",
            "cdata_ben": "cdata",
            "lastname": "lastname",
            "cdata_bit": "cdata",
            "title1": "title",
            "cdata_how_to_hack": "cdata",
            "year1": "year",
            "cdata_1999_a": "cdata",
            "article2": "article",
            "author2": "author",
            "cdata_bob_byte": "cdata",
            "year2": "year",
            "cdata_1999_b": "cdata",
            "title2": "title",
            "cdata_hacking_rsi": "cdata",
        }
        for name, label in labels.items():
            assert figure1_doc.node(O[name]).label == label, name

    def test_article_keys(self, figure1_doc):
        assert figure1_doc.node(O["article1"]).attributes["key"] == "BB99"
        assert figure1_doc.node(O["article2"]).attributes["key"] == "BK99"

    def test_strings(self, figure1_doc):
        values = {
            "cdata_ben": "Ben",
            "cdata_bit": "Bit",
            "cdata_how_to_hack": "How to Hack",
            "cdata_1999_a": "1999",
            "cdata_bob_byte": "Bob Byte",
            "cdata_1999_b": "1999",
            "cdata_hacking_rsi": "Hacking & RSI",
        }
        for name, value in values.items():
            assert figure1_doc.node(O[name]).string_value == value

    def test_article2_child_order_year_before_title(self, figure1_doc):
        """Figure 1 draws article 2 with year before title."""
        labels = [c.label for c in figure1_doc.node(O["article2"]).children]
        assert labels == ["author", "year", "title"]

    def test_fresh_document_per_call(self):
        assert figure1_document() is not figure1_document()
