"""Unit tests for the synthetic DBLP generator."""

import pytest

from repro.datasets.dblp import (
    DblpConfig,
    ICDE_MISSING_YEAR,
    dblp_document,
    expected_icde_publications,
)
from repro.monet.transform import monet_transform


@pytest.fixture(scope="module")
def config():
    return DblpConfig(papers_per_proceedings=4, articles_per_year=2)


@pytest.fixture(scope="module")
def doc(config):
    return dblp_document(config)


class TestStructure:
    def test_root_is_dblp(self, doc):
        assert doc.root.label == "dblp"

    def test_flat_dblp_markup(self, doc):
        kinds = {child.label for child in doc.root.children}
        assert kinds == {"proceedings", "inproceedings", "article"}

    def test_inproceedings_fields(self, doc):
        entry = next(
            child for child in doc.root.children if child.label == "inproceedings"
        )
        labels = {grandchild.label for grandchild in entry.children}
        assert {"author", "title", "booktitle", "year"} <= labels
        assert "key" in entry.attributes

    def test_counts(self, config, doc):
        pubs = [c for c in doc.root.children if c.label == "inproceedings"]
        # 16 years × 4 venues − the missing ICDE 1985 instalment
        instalments = 16 * 4 - 1
        assert len(pubs) == instalments * config.papers_per_proceedings
        articles = [c for c in doc.root.children if c.label == "article"]
        assert len(articles) == 16 * config.articles_per_year

    def test_icde_1985_gap(self, config, doc):
        """The paper: "there was no ICDE in 1985"."""
        assert not config.has_instalment("ICDE", ICDE_MISSING_YEAR)
        assert config.has_instalment("ICDE", 1986)
        assert config.has_instalment("VLDB", ICDE_MISSING_YEAR)
        icde_1985 = [
            child
            for child in doc.root.children
            if child.label == "proceedings"
            and child.attributes.get("key") == "conf/icde/1985"
        ]
        assert icde_1985 == []

    def test_markup_irregularity_structured_authors(self, doc):
        structured = flat = 0
        for entry in doc.root.children:
            for author in entry.find_all("author"):
                if author.find("firstname") is not None:
                    structured += 1
                else:
                    flat += 1
        assert structured > 0 and flat > 0

    def test_keys_contain_no_bare_year_token(self, doc):
        """DBLP keys glue the year to a surname; a year search must not
        hit every key (keeps the §5 hit sets faithful)."""
        from repro.fulltext.tokenizer import tokenize

        for entry in doc.root.children:
            if entry.label == "proceedings":
                continue  # proceedings keys legitimately carry the year
            key = entry.attributes.get("key", "")
            assert "1999" not in tokenize(key)


class TestDeterminism:
    def test_same_seed_same_document(self, config):
        doc1 = dblp_document(config)
        doc2 = dblp_document(config)
        assert doc1.node_count == doc2.node_count
        for oid in list(doc1.iter_oids())[::97]:
            assert doc1.node(oid).label == doc2.node(oid).label
            assert doc1.node(oid).attributes == doc2.node(oid).attributes

    def test_different_seed_differs(self, config):
        other = DblpConfig(
            seed=config.seed + 1,
            papers_per_proceedings=config.papers_per_proceedings,
            articles_per_year=config.articles_per_year,
        )
        doc1 = dblp_document(config)
        doc2 = dblp_document(other)
        differing = sum(
            1
            for oid in list(doc1.iter_oids())[:2000]
            if oid in doc2
            and doc1.node(oid).attributes != doc2.node(oid).attributes
        )
        assert differing > 0


class TestGroundTruth:
    def test_expected_icde_publications(self, config):
        assert expected_icde_publications(config, [1999]) == 4
        assert expected_icde_publications(config, [1985]) == 0
        assert expected_icde_publications(config, range(1984, 2000)) == 4 * 15

    def test_store_loads_and_validates(self, doc):
        store = monet_transform(doc)
        store.validate()
        assert store.node_count == doc.node_count
