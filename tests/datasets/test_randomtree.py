"""Unit tests for the random-document generator."""

import pytest

from repro.datasets.randomtree import random_document, random_oid_pairs
from repro.monet.transform import monet_transform


class TestRandomDocument:
    def test_deterministic(self):
        doc1 = random_document(99, nodes=100)
        doc2 = random_document(99, nodes=100)
        assert doc1.node_count == doc2.node_count
        for oid in doc1.iter_oids():
            assert doc1.node(oid).label == doc2.node(oid).label

    def test_size_scales_with_request(self):
        small = random_document(1, nodes=50)
        large = random_document(1, nodes=500)
        assert large.node_count > small.node_count

    def test_max_children_respected(self):
        doc = random_document(3, nodes=300, max_children=3)
        for node in doc.iter_nodes():
            element_children = [
                child for child in node.children if child.label != "cdata"
            ]
            # a node gets at most max_children element children; a cdata
            # child from text materialization may be appended on top
            assert len(element_children) <= 3

    def test_needs_at_least_root(self):
        with pytest.raises(ValueError):
            random_document(1, nodes=0)

    def test_transforms_and_validates(self):
        store = monet_transform(random_document(17, nodes=250))
        store.validate()


class TestRandomPairs:
    def test_pairs_inside_bounds(self):
        doc = random_document(5, nodes=80, first_oid=100)
        for oid1, oid2 in random_oid_pairs(doc, 50, seed=5):
            assert oid1 in doc and oid2 in doc

    def test_deterministic(self):
        doc = random_document(5, nodes=80)
        assert random_oid_pairs(doc, 20, seed=1) == random_oid_pairs(
            doc, 20, seed=1
        )
