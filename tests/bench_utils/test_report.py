"""Unit tests for the bench reporting helpers."""

from repro.bench.report import Series, render_ascii_plot, render_table


class TestSeries:
    def test_add_and_columns(self):
        series = Series("meet")
        series.add(0, 1.0)
        series.add(2, 3.0)
        assert series.xs == [0, 2]
        assert series.ys == [1.0, 3.0]


class TestTable:
    def test_alignment_and_header(self):
        text = render_table(
            ["n", "time"], [[1, "2.0"], [100, "3.5"]], title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "n" in lines[1] and "time" in lines[1]
        assert lines[2].startswith("-")
        assert lines[-1].endswith("3.5")

    def test_wide_cells_stretch_columns(self):
        text = render_table(["x"], [["averyverylongvalue"]])
        assert "averyverylongvalue" in text


class TestPlot:
    def test_plot_contains_markers_and_legend(self):
        series = Series("fulltext and meet")
        for x in range(10):
            series.add(x, float(x))
        text = render_ascii_plot([series], title="Figure 6")
        assert "Figure 6" in text
        assert "*" in text
        assert "fulltext and meet" in text

    def test_two_series_distinct_markers(self):
        one = Series("a")
        one.add(0, 0)
        two = Series("b")
        two.add(1, 1)
        text = render_ascii_plot([one, two])
        assert "* = a" in text and "o = b" in text

    def test_empty_plot(self):
        assert "(no data)" in render_ascii_plot([], title="t")

    def test_constant_series_no_division_error(self):
        series = Series("flat")
        series.add(0, 5.0)
        series.add(1, 5.0)
        text = render_ascii_plot([series])
        assert "flat" in text
