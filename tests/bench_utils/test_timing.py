"""Unit tests for the bench timing helpers."""

import pytest

from repro.bench.timing import Timing, measure, time_once


class TestTimeOnce:
    def test_returns_positive_milliseconds(self):
        elapsed = time_once(lambda: sum(range(1000)))
        assert elapsed >= 0.0


class TestMeasure:
    def test_statistics_shape(self):
        timing = measure(lambda: None, repeats=5, warmup=1)
        assert timing.repeats == 5
        assert timing.min_ms <= timing.median_ms <= timing.max_ms
        assert timing.mean_ms >= 0

    def test_single_repeat_has_zero_stdev(self):
        timing = measure(lambda: None, repeats=1, warmup=0)
        assert timing.stdev_ms == 0.0

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)

    def test_warmup_runs_function(self):
        calls = []
        measure(lambda: calls.append(1), repeats=2, warmup=3)
        assert len(calls) == 5

    def test_str_rendering(self):
        text = str(measure(lambda: None, repeats=2))
        assert "ms" in text and "median of 2" in text
