"""The request/envelope JSON codec: round trips and strict validation."""

import json

import pytest

from repro.api.envelopes import (
    ENVELOPE_FORMAT,
    EnvelopeError,
    NearestRequest,
    QueryRequest,
    ResultEnvelope,
    SearchRequest,
    request_from_dict,
)


def through_json(payload):
    """Simulate the wire: the dict must survive a JSON round trip."""
    return json.loads(json.dumps(payload))


class TestRequestRoundTrips:
    def test_search(self):
        request = SearchRequest(term="Bit", limit=5, collection="bib")
        rebuilt = SearchRequest.from_dict(through_json(request.to_dict()))
        assert rebuilt == request

    def test_nearest(self):
        request = NearestRequest(
            terms=("Bit", "1999"),
            exclude_root=True,
            require_all_terms=True,
            within=4,
            limit=3,
            snippets=True,
        )
        rebuilt = NearestRequest.from_dict(through_json(request.to_dict()))
        assert rebuilt == request

    def test_nearest_terms_normalize_to_tuple(self):
        assert NearestRequest(terms=["a", "b"]).terms == ("a", "b")

    def test_query(self):
        request = QueryRequest(text="select $o from # $o", render=True)
        rebuilt = QueryRequest.from_dict(through_json(request.to_dict()))
        assert rebuilt == request

    def test_dispatch_on_kind(self):
        for request in (
            SearchRequest(term="x"),
            NearestRequest(terms=("a", "b")),
            QueryRequest(text="select $o from # $o"),
        ):
            assert request_from_dict(request.to_dict()) == request


class TestRequestValidation:
    def test_unknown_kind(self):
        with pytest.raises(EnvelopeError, match="unknown request kind"):
            request_from_dict({"kind": "teleport"})

    def test_unknown_field_rejected(self):
        with pytest.raises(EnvelopeError, match="unknown search field"):
            SearchRequest.from_dict({"term": "x", "termz": "y"})

    def test_search_needs_term(self):
        with pytest.raises(EnvelopeError, match="non-empty 'term'"):
            SearchRequest.from_dict({"term": ""})

    def test_nearest_needs_string_terms(self):
        with pytest.raises(EnvelopeError, match="list of strings"):
            NearestRequest.from_dict({"terms": ["ok", 3]})

    def test_nearest_type_checks(self):
        with pytest.raises(EnvelopeError, match="'within' must be an integer"):
            NearestRequest.from_dict({"terms": ["a", "b"], "within": "4"})
        with pytest.raises(EnvelopeError, match="'snippets' must be a boolean"):
            NearestRequest.from_dict({"terms": ["a", "b"], "snippets": 1})

    def test_query_needs_text(self):
        with pytest.raises(EnvelopeError, match="non-empty 'text'"):
            QueryRequest.from_dict({"text": "   "})

    def test_payload_must_be_object(self):
        with pytest.raises(EnvelopeError, match="JSON object"):
            SearchRequest.from_dict(["term"])


def sample_envelope(**overrides):
    fields = dict(
        kind="nearest",
        request=NearestRequest(terms=("Bit", "1999")).to_dict(),
        answers=(
            {
                "oid": 13,
                "tag": "article",
                "path": "bibliography/institute/article",
                "joins": 5,
                "spread": 5,
                "depth": 2,
                "origins": [8, 13],
                "terms": ["1999", "Bit"],
            },
        ),
        count=1,
        elapsed_ms=1.25,
        stats={"origin": "parse", "backend": "steered", "cache": None},
    )
    fields.update(overrides)
    return ResultEnvelope(**fields)


class TestEnvelopeRoundTrips:
    def test_nearest_envelope(self):
        envelope = sample_envelope()
        payload = through_json(envelope.to_dict())
        assert ResultEnvelope.from_dict(payload).to_dict() == payload

    def test_query_envelope_with_rows(self):
        envelope = sample_envelope(
            kind="query",
            answers=(),
            columns=("meet($a, $b)", "tag($o)"),
            rows=((13, "article"), (3, "institute")),
            rendered="<answer>\n</answer>",
            count=2,
        )
        payload = through_json(envelope.to_dict())
        rebuilt = ResultEnvelope.from_dict(payload)
        assert rebuilt.to_dict() == payload
        # JSON turns tuples into lists; from_dict re-canonicalizes.
        assert rebuilt.rows == ((13, "article"), (3, "institute"))
        assert rebuilt.columns == ("meet($a, $b)", "tag($o)")

    def test_format_marker_present(self):
        assert sample_envelope().to_dict()["format"] == ENVELOPE_FORMAT


class TestEnvelopeValidation:
    def test_rejects_wrong_format(self):
        payload = sample_envelope().to_dict()
        payload["format"] = "something-else"
        with pytest.raises(EnvelopeError, match="not a result envelope"):
            ResultEnvelope.from_dict(payload)

    def test_rejects_unknown_version(self):
        payload = sample_envelope().to_dict()
        payload["version"] = 99
        with pytest.raises(EnvelopeError, match="unsupported envelope version"):
            ResultEnvelope.from_dict(payload)

    def test_rejects_bad_answers(self):
        payload = sample_envelope().to_dict()
        payload["answers"] = "nope"
        with pytest.raises(EnvelopeError, match="'answers'"):
            ResultEnvelope.from_dict(payload)

    def test_rejects_bad_count(self):
        payload = sample_envelope().to_dict()
        payload["count"] = True
        with pytest.raises(EnvelopeError, match="'count'"):
            ResultEnvelope.from_dict(payload)
