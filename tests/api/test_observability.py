"""End-to-end observability: tracing, /v1/metrics, structured logs.

The acceptance test mirrors the PR's headline criterion: a traced
query against a **2-shard × 2-replica cluster** comes back with at
least six named spans, at least one of them produced inside a remote
worker process (it carries that worker's ``pid``), and the span
timings are consistent with the envelope's own clock.
"""

import io
import json
import logging
import os
import urllib.error
import urllib.request

import pytest

import repro
from repro.api import Database, DatabaseOptions, ReproServer
from repro.datamodel.serializer import serialize
from repro.datasets import DblpConfig, dblp_document, figure1_document
from repro.monet.transform import monet_transform
from repro.obs.logs import configure_logging
from repro.snapshot import Catalog

from ..obs.prom_parser import parse_prometheus_text


def _request(url, payload=None, headers=()):
    request = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **dict(headers)},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def _json(url, payload=None, headers=()):
    status, response_headers, body = _request(url, payload, headers)
    return status, response_headers, json.loads(body)


@pytest.fixture(scope="module")
def server():
    database = Database(
        monet_transform(figure1_document()),
        options=DatabaseOptions(backend="indexed", cache=64),
    )
    with ReproServer({"figure1": database}, port=0) as running:
        yield running


@pytest.fixture(scope="module")
def cluster_server(tmp_path_factory):
    document = dblp_document(
        DblpConfig(papers_per_proceedings=3, articles_per_year=2)
    )
    root = tmp_path_factory.mktemp("obs-catalog")
    xml = root / "dblp.xml"
    xml.write_text(serialize(document), encoding="utf-8")
    Catalog(root / "cat").ingest("dblp", xml, shards=2)
    with repro.open(
        snapshot="dblp", catalog=root / "cat", replicas=2, cache=64
    ) as database:
        with ReproServer({"dblp": database}, port=0) as running:
            yield running


class TestTracedRequests:
    def test_trace_header_opts_into_spans(self, server):
        status, headers, body = _json(
            server.url("/v1/nearest"),
            {"terms": ["Bit", "1999"]},
            headers={"X-Repro-Trace": "1"},
        )
        assert status == 200
        trace = body["stats"]["trace"]
        assert headers["X-Repro-Trace-Id"] == trace["trace_id"]
        names = [span["name"] for span in trace["spans"]]
        assert "admission.wait" in names
        assert "serialize" in names
        assert trace["span_count"] == len(trace["spans"])

    def test_no_header_no_trace(self, server):
        status, headers, body = _json(
            server.url("/v1/nearest"), {"terms": ["Bit", "1999"]}
        )
        assert status == 200
        assert "trace" not in body["stats"]
        # The trace *id* is always assigned, trace or not.
        assert headers["X-Repro-Trace-Id"]

    @pytest.mark.parametrize("value", ["0", "false", "no", ""])
    def test_falsy_header_values_do_not_trace(self, server, value):
        status, _headers, body = _json(
            server.url("/v1/nearest"),
            {"terms": ["Bit", "1999"]},
            headers={"X-Repro-Trace": value},
        )
        assert status == 200
        assert "trace" not in body["stats"]

    def test_error_envelope_carries_trace_id(self, server):
        status, headers, body = _json(
            server.url("/v1/nearest"), {"terms": ["only-one"]}
        )
        assert status == 400
        assert body["trace_id"]
        assert headers["X-Repro-Trace-Id"] == body["trace_id"]
        # The envelope shape stays backward compatible.
        assert set(body) >= {"error", "status", "code", "retryable"}

    def test_unknown_route_404_carries_trace_id(self, server):
        status, headers, body = _json(server.url("/v1/nope"))
        assert status == 404
        assert headers["X-Repro-Trace-Id"] == body["trace_id"]


class TestClusterTraceAcceptance:
    def test_sharded_replicated_query_spans(self, cluster_server):
        status, _headers, body = _json(
            cluster_server.url("/v1/nearest"),
            {"terms": ["Bit", "1999"]},
            headers={"X-Repro-Trace": "1"},
        )
        assert status == 200
        trace = body["stats"]["trace"]
        spans = trace["spans"]
        names = [span["name"] for span in spans]

        # ≥ 6 named spans across the whole path.
        assert len(names) >= 6
        assert "admission.wait" in names
        assert "cache.lookup" in names
        assert "shard.scatter" in names
        assert "shard[0].nearest" in names
        assert "shard[1].nearest" in names
        assert "merge" in names
        assert "serialize" in names

        # At least one span was produced inside a remote worker
        # process: it carries that worker's pid, which is not ours.
        worker_spans = [span for span in spans if "pid" in span]
        assert worker_spans
        assert all(span["pid"] != os.getpid() for span in worker_spans)

        # Span timings are consistent with the envelope's own clock:
        # every span is non-negative, each worker span is contained in
        # the scatter that carried it, and the coordinator-side
        # exclusive stages sum to no more than the request total.
        assert all(span["ms"] >= 0 for span in spans)
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], 0.0)
            by_name[span["name"]] += span["ms"]
        epsilon = 5.0  # ms of clock slack between processes
        scatter_ms = by_name["shard.scatter"]
        for span in worker_spans:
            assert span["ms"] <= scatter_ms + epsilon
        exclusive = (
            by_name["cache.lookup"]
            + by_name["shard.scatter"]
            + by_name["merge"]
        )
        assert exclusive <= body["elapsed_ms"] + epsilon

    def test_cache_hit_trace_is_shorter(self, cluster_server):
        payload = {"terms": ["Bit", "1999"], "limit": 3}
        for _ in range(2):
            status, _headers, body = _json(
                cluster_server.url("/v1/nearest"),
                payload,
                headers={"X-Repro-Trace": "1"},
            )
            assert status == 200
        names = [
            span["name"] for span in body["stats"]["trace"]["spans"]
        ]
        assert "cache.lookup" in names
        assert "shard.scatter" not in names  # served from the cache


class TestMetricsEndpoint:
    def test_metrics_parse_strictly_and_core_series_nonzero(self, server):
        # Drive some traffic first so the series have values.
        _json(server.url("/v1/nearest"), {"terms": ["Bit", "1999"]})
        _json(server.url("/v1/nearest"), {"terms": ["Bit", "1999"]})
        status, headers, body = _request(server.url("/v1/metrics"))
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]

        families = parse_prometheus_text(body.decode("utf-8"))
        requests_total = sum(
            value
            for _name, labels, value in families["repro_http_requests_total"][
                "samples"
            ]
            if labels["route"] == "/v1/nearest" and labels["status"] == "200"
        )
        assert requests_total >= 2
        admitted = families["repro_admission_admitted_total"]["samples"]
        assert admitted[0][2] >= 2
        hits = {
            labels["collection"]: value
            for _n, labels, value in families["repro_cache_hits_total"][
                "samples"
            ]
        }
        assert hits["figure1"] >= 1  # the repeat request hit the cache
        assert families["repro_http_request_duration_seconds"]["kind"] == (
            "histogram"
        )

    def test_cluster_metrics_expose_circuit_state(self, cluster_server):
        status, _headers, body = _request(cluster_server.url("/v1/metrics"))
        assert status == 200
        families = parse_prometheus_text(body.decode("utf-8"))
        circuit = families["repro_replica_circuit_state"]["samples"]
        # 2 shards × 2 replicas, all healthy (state 0).
        assert len(circuit) == 4
        assert {
            (labels["shard"], labels["replica"]) for _n, labels, _v in circuit
        } == {("0", "0"), ("0", "1"), ("1", "0"), ("1", "1")}
        assert all(value == 0.0 for _n, _labels, value in circuit)
        assert "repro_failovers_total" in families

    def test_stats_stays_backward_compatible(self, server):
        status, _headers, body = _json(server.url("/v1/stats"))
        assert status == 200
        # Every pre-existing key survives ...
        assert set(body) >= {
            "default",
            "collections",
            "workers",
            "index_builds",
            "admission",
        }
        admission = body["admission"]
        assert set(admission) >= {
            "in_flight",
            "queued",
            "max_concurrency",
            "max_queue",
            "admitted",
            "shed",
            "queue_timeouts",
            "latency",
        }
        assert isinstance(admission["admitted"], int)
        collection = body["collections"]["figure1"]
        assert set(collection["cache"]) >= {"hits", "misses", "currsize"}
        # ... and the new metrics view is additive.
        assert body["metrics"]["repro_http_requests_total"]["kind"] == (
            "counter"
        )


class TestAccessLog:
    @pytest.fixture(autouse=True)
    def _clean_repro_logger(self):
        logger = logging.getLogger("repro")
        saved = (list(logger.handlers), logger.level, logger.propagate)
        yield
        logger.handlers[:] = saved[0]
        logger.setLevel(saved[1])
        logger.propagate = saved[2]

    def test_json_access_line_per_request(self, server):
        stream = io.StringIO()
        configure_logging(json_logs=True, level="info", stream=stream)
        status, headers, _body = _json(
            server.url("/v1/nearest"),
            {"terms": ["Bit", "1999"]},
            headers={"X-Repro-Trace": "1"},
        )
        assert status == 200
        lines = [
            json.loads(line)
            for line in stream.getvalue().splitlines()
            if json.loads(line).get("message") == "access"
        ]
        assert lines
        record = lines[-1]
        assert record["route"] == "/v1/nearest"
        assert record["method"] == "POST"
        assert record["status"] == 200
        assert record["trace_id"] == headers["X-Repro-Trace-Id"]
        assert record["latency_ms"] >= 0
        assert record["queue_wait_ms"] >= 0
        assert record["bytes"] > 0

    def test_error_access_line_carries_code(self, server):
        stream = io.StringIO()
        configure_logging(json_logs=True, level="info", stream=stream)
        status, _headers, _body = _json(
            server.url("/v1/nearest"), {"terms": ["only-one"]}
        )
        assert status == 400
        records = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        errors = [r for r in records if r.get("status") == 400]
        assert errors
        assert errors[-1]["code"]
        assert errors[-1]["trace_id"]

    def test_slow_query_log_includes_spans(self, server):
        stream = io.StringIO()
        configure_logging(json_logs=True, level="info", stream=stream)
        server.slow_query_ms = 0.0  # every request is "slow"
        try:
            status, _headers, _body = _json(
                server.url("/v1/nearest"),
                {"terms": ["Bit", "1999"]},
                headers={"X-Repro-Trace": "1"},
            )
            assert status == 200
        finally:
            server.slow_query_ms = None
        slow = [
            json.loads(line)
            for line in stream.getvalue().splitlines()
            if json.loads(line).get("message") == "slow query"
        ]
        assert slow
        record = slow[-1]
        assert record["level"] == "warning"
        assert record["threshold_ms"] == 0.0
        assert any(span["name"] == "serialize" for span in record["spans"])
