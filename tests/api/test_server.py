"""The embedded HTTP/JSON service: routes, errors, and concurrency.

The headline assertion mirrors the PR's acceptance criteria: with warm
databases, 8 client threads hammering ``/v1/search`` and ``/v1/query``
(and ``/v1/nearest``) trigger **zero index rebuilds** — asserted via
the cache counters surfaced by ``/v1/stats`` — and every response body
round-trips through ``ResultEnvelope.from_dict``.
"""

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import Database, DatabaseOptions, ReproServer
from repro.api.envelopes import ResultEnvelope
from repro.core.lca_index import lca_index_cache_info
from repro.datamodel.serializer import serialize
from repro.datasets import PlaysConfig, figure1_document, plays_document
from repro.fulltext.index import fulltext_index_cache_info
from repro.monet.transform import monet_transform


def http_json(url, payload=None):
    """(status, parsed body) for a GET (payload None) or JSON POST."""
    request = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def server():
    options = DatabaseOptions(backend="indexed", cache=256)
    figure1 = Database(
        monet_transform(figure1_document()), options=options
    )
    plays = Database(
        monet_transform(
            plays_document(PlaysConfig(plays=2, acts_per_play=2, scenes_per_act=2))
        ),
        options=options,
    )
    with ReproServer(
        {"figure1": figure1, "plays": plays}, default="figure1", port=0
    ) as running:
        yield running


QUERY_TEXT = (
    "select meet($a,$b) from # $a, # $b "
    "where $a contains 'Bit' and $b contains '1999'"
)


class TestRoutes:
    def test_healthz(self, server):
        status, body = http_json(server.url("/healthz"))
        assert status == 200
        assert body["status"] == "ok"
        assert body["collections"] == ["figure1", "plays"]
        assert body["default"] == "figure1"

    def test_collections(self, server):
        status, body = http_json(server.url("/v1/collections"))
        assert status == 200
        assert body["collections"]["figure1"]["node_count"] == 19
        assert body["collections"]["plays"]["backend"] == "indexed"

    def test_stats(self, server):
        status, body = http_json(server.url("/v1/stats"))
        assert status == 200
        row = body["collections"]["figure1"]
        assert row["backend"] == "indexed"
        # Index-build counters are process-wide, reported once.
        assert set(body["index_builds"]) == {"lca", "fulltext", "valueindex"}

    def test_nearest(self, server):
        status, body = http_json(
            server.url("/v1/nearest"), {"terms": ["Bit", "1999"]}
        )
        assert status == 200
        envelope = ResultEnvelope.from_dict(body)
        assert envelope.answers[0]["tag"] == "article"
        assert envelope.answers[0]["joins"] == 5

    def test_search(self, server):
        status, body = http_json(server.url("/v1/search"), {"term": "Bit"})
        assert status == 200
        envelope = ResultEnvelope.from_dict(body)
        assert envelope.count == 1

    def test_query(self, server):
        status, body = http_json(
            server.url("/v1/query"), {"text": QUERY_TEXT, "render": True}
        )
        assert status == 200
        envelope = ResultEnvelope.from_dict(body)
        assert envelope.count == len(envelope.rows) == 1
        assert "<answer>" in envelope.rendered

    def test_collection_routing(self, server):
        status, body = http_json(
            server.url("/v1/nearest"),
            {"terms": ["crown", "ghost"], "collection": "plays"},
        )
        assert status == 200
        assert ResultEnvelope.from_dict(body).stats["backend"] == "indexed"


class TestErrors:
    def test_unknown_route(self, server):
        status, body = http_json(server.url("/v1/teleport"), {})
        assert status == 404 and "unknown route" in body["error"]

    def test_unknown_collection(self, server):
        status, body = http_json(
            server.url("/v1/search"), {"term": "x", "collection": "ghost"}
        )
        assert status == 404 and "unknown collection" in body["error"]

    def test_malformed_json(self, server):
        request = urllib.request.Request(
            server.url("/v1/search"),
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_single_term_nearest_is_400(self, server):
        status, body = http_json(server.url("/v1/nearest"), {"terms": ["solo"]})
        assert status == 400 and "two terms" in body["error"]

    def test_kind_route_mismatch(self, server):
        status, body = http_json(
            server.url("/v1/search"), {"kind": "query", "text": "x"}
        )
        assert status == 400 and "does not match route" in body["error"]

    def test_bad_query_is_400(self, server):
        status, body = http_json(
            server.url("/v1/query"), {"text": "selekt nothing"}
        )
        assert status == 400 and "error" in body


class TestLifecycle:
    def test_shutdown_before_serving_returns_promptly(self):
        # BaseServer.shutdown() blocks on an event only the serve loop
        # sets; ReproServer.shutdown must not hang when the loop never
        # ran (e.g. Ctrl-C before startup finished).
        database = Database(monet_transform(figure1_document()))
        server = ReproServer({"bib": database}, port=0)
        server.shutdown()  # must return, releasing the port

    def test_oversized_body_closes_connection(self, server):
        # A 413 is sent before the body is read; the server must close
        # the connection, otherwise the unread bytes would sit on the
        # keep-alive stream and be misparsed as the next request line.
        import socket

        from repro.api.server import MAX_BODY_BYTES

        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            head = (
                f"POST /v1/search HTTP/1.1\r\n"
                f"Host: {server.host}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n"
            ).encode()
            sock.sendall(head + b'{"term": "')  # body mostly unsent
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break  # EOF: the server closed the connection
                chunks.append(chunk)
            response = b"".join(chunks)
            assert b"413" in response.split(b"\r\n", 1)[0]
            assert b"Connection: close" in response


class TestConcurrency:
    def test_eight_threads_zero_rebuilds(self, server):
        # Warm both collections through every endpoint once, then
        # freeze the process-wide index-build counters.
        http_json(server.url("/v1/nearest"), {"terms": ["Bit", "1999"]})
        http_json(server.url("/v1/query"), {"text": QUERY_TEXT})
        http_json(
            server.url("/v1/nearest"),
            {"terms": ["crown", "ghost"], "collection": "plays"},
        )
        lca_builds = lca_index_cache_info().builds
        ft_builds = fulltext_index_cache_info().builds
        _, stats_before = http_json(server.url("/v1/stats"))
        hits_before = stats_before["collections"]["figure1"]["cache"]["hits"]

        payloads = [
            ("/v1/nearest", {"terms": ["Bit", "1999"], "limit": 5}),
            ("/v1/search", {"term": "Bit"}),
            ("/v1/query", {"text": QUERY_TEXT}),
            (
                "/v1/nearest",
                {"terms": ["crown", "ghost"], "collection": "plays"},
            ),
            ("/v1/query", {"text": QUERY_TEXT, "render": True}),
        ]

        def hammer(index: int):
            route, payload = payloads[index % len(payloads)]
            status, body = http_json(server.url(route), payload)
            assert status == 200
            envelope = ResultEnvelope.from_dict(body)
            assert envelope.to_dict() == body
            return envelope

        with ThreadPoolExecutor(max_workers=8) as pool:
            envelopes = list(pool.map(hammer, range(96)))
        assert len(envelopes) == 96

        # Zero index rebuilds under concurrent load …
        assert lca_index_cache_info().builds == lca_builds
        assert fulltext_index_cache_info().builds == ft_builds
        # … and the shared result cache absorbed the repeats (the
        # counters are exposed via /v1/stats, per acceptance criteria).
        _, stats_after = http_json(server.url("/v1/stats"))
        cache_row = stats_after["collections"]["figure1"]["cache"]
        assert cache_row["hits"] > hits_before
        assert stats_after["index_builds"]["lca"] == lca_index_cache_info().builds
        assert (
            stats_after["index_builds"]["fulltext"]
            == fulltext_index_cache_info().builds
        )
