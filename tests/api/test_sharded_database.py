"""The facade over the execution layer: every sharded open branch."""

import pytest

import repro
from repro.api import Database, DatabaseOptions, NearestRequest
from repro.core.backends import snapshot_default_backend
from repro.datamodel.errors import ReproError
from repro.datamodel.serializer import serialize
from repro.datasets import DblpConfig, dblp_document
from repro.monet.transform import monet_transform
from repro.snapshot import Catalog

QUERY = (
    "select meet($a,$b) from # $a, # $b "
    "where $a contains 'ICDE' and $b contains '1999'"
)


@pytest.fixture(scope="module")
def document():
    return dblp_document(
        DblpConfig(papers_per_proceedings=3, articles_per_year=2)
    )


@pytest.fixture(scope="module")
def xml_path(document, tmp_path_factory):
    path = tmp_path_factory.mktemp("src") / "dblp.xml"
    path.write_text(serialize(document), encoding="utf-8")
    return path


@pytest.fixture(scope="module")
def catalog_dir(xml_path, tmp_path_factory):
    root = tmp_path_factory.mktemp("catalog")
    Catalog(root).ingest("dblp", xml_path, shards=3)
    return root


@pytest.fixture(scope="module")
def reference(document):
    return Database(monet_transform(document))


def _assert_same_answers(reference, database):
    for request in (
        NearestRequest(terms=("ICDE", "1999"), limit=5),
        NearestRequest(terms=("VLDB", "1994"), exclude_root=True),
        NearestRequest(terms=("ICDE", "1999"), limit=3, snippets=True),
    ):
        assert list(database.nearest(request).answers) == list(
            reference.nearest(request).answers
        )
    assert database.query(QUERY).rows == reference.query(QUERY).rows
    assert list(database.search("SIGMOD").answers) == list(
        reference.search("SIGMOD").answers
    )


def test_open_sharded_collection_serial(catalog_dir, reference):
    database = repro.open(snapshot="dblp", catalog=catalog_dir)
    assert database.is_sharded
    assert database.sharded.executor.name == "serial"
    assert database.backend_name == snapshot_default_backend()
    assert "3 shards" in database.origin
    _assert_same_answers(reference, database)
    stats = database.stats()
    assert stats["executor"]["mode"] == "serial"
    envelope = database.nearest(NearestRequest(terms=("ICDE", "1999")))
    assert envelope.stats["shards"]["count"] == 3


def test_open_sharded_collection_parallel(catalog_dir, reference):
    with repro.open(
        snapshot="dblp", catalog=catalog_dir, workers=2
    ) as database:
        assert database.sharded.executor.name == "parallel"
        _assert_same_answers(reference, database)
        stats = database.stats()["executor"]
        assert stats["workers"] == 2
        assert stats["index_builds"] == {"lca": 0, "fulltext": 0}
    # close() is idempotent.
    database.close()


def test_open_xml_with_shards(xml_path, reference):
    database = repro.open(
        xml_path, catalog=xml_path.parent / "none", shards=4
    )
    assert database.is_sharded
    assert database.sharded.shard_count == 4
    assert database.backend_name == "steered"  # parse default
    _assert_same_answers(reference, database)


def test_workers_imply_shards(xml_path, reference):
    with repro.open(
        xml_path, catalog=xml_path.parent / "none", workers=2
    ) as database:
        assert database.sharded.shard_count == 2
        assert database.sharded.executor.name == "parallel"
        _assert_same_answers(reference, database)


def test_explicit_shards_conflict_with_layout(catalog_dir):
    with pytest.raises(ReproError, match="persisted as 3 shard"):
        repro.open(snapshot="dblp", catalog=catalog_dir, shards=2)


def test_sharded_database_has_no_engine(catalog_dir):
    database = repro.open(snapshot="dblp", catalog=catalog_dir)
    with pytest.raises(ReproError, match="no single engine"):
        _ = database.engine
    with pytest.raises(ReproError, match="no single query processor"):
        _ = database.processor


def test_describe_and_render(catalog_dir, reference):
    database = repro.open(snapshot="dblp", catalog=catalog_dir)
    meta = database.describe()
    assert meta["shards"]["count"] == 3
    assert meta["node_count"] == reference.node_count
    assert meta["path_count"] == len(reference.store.summary) - 1
    from repro.api.envelopes import QueryRequest

    rendered = database.query(QueryRequest(text=QUERY, render=True)).rendered
    expected = reference.query(QueryRequest(text=QUERY, render=True)).rendered
    assert rendered == expected
    assert database.explain(QUERY) == reference.explain(QUERY)


def test_to_xml_routes_to_owning_shard(catalog_dir, reference):
    database = repro.open(snapshot="dblp", catalog=catalog_dir)
    answer = database.nearest(NearestRequest(terms=("ICDE", "1999"), limit=1))
    oid = answer.answers[0]["oid"]
    assert database.to_xml(oid) == reference.engine.to_xml(oid)


def test_constructor_requires_a_store():
    with pytest.raises(ReproError):
        Database()


def test_shards_option_validation():
    with pytest.raises(ValueError):
        DatabaseOptions(shards=0)
    with pytest.raises(ValueError):
        DatabaseOptions(workers=-1)
    assert DatabaseOptions(workers=3).effective_shards == 3
    assert DatabaseOptions(shards=2, workers=5).effective_shards == 2
    assert DatabaseOptions().effective_shards is None
