"""The ``Database`` facade: source resolution and differential fidelity.

Two contracts under test:

1. ``Database.open`` resolves all four source kinds — XML file, legacy
   JSON image, ``.snap`` bundle, catalog collection — plus the
   corrupt-catalog → parse fallback (each branch explicitly).
2. Facade answers are byte-identical, including ranking order, to
   direct ``NearestConceptEngine`` / ``QueryProcessor`` calls on every
   bundled dataset.
"""

import pytest

import repro
from repro.api import Database, DatabaseOptions
from repro.api.envelopes import NearestRequest, QueryRequest, ResultEnvelope
from repro.cli import main as cli_main
from repro.core.backends import snapshot_default_backend
from repro.core.engine import NearestConceptEngine
from repro.datamodel.errors import ReproError
from repro.datamodel.serializer import serialize
from repro.datasets import (
    DblpConfig,
    MultimediaConfig,
    PlaysConfig,
    dblp_document,
    figure1_document,
    multimedia_document,
    plays_document,
)
from repro.datasets.randomtree import random_document
from repro.fulltext.search import SearchEngine
from repro.monet import storage
from repro.monet.transform import monet_transform
from repro.query.executor import QueryProcessor


@pytest.fixture()
def xml_file(tmp_path):
    path = tmp_path / "bib.xml"
    path.write_text(serialize(figure1_document()), encoding="utf-8")
    return path


@pytest.fixture()
def catalog_dir(tmp_path):
    return tmp_path / "catalog"


@pytest.fixture()
def built_catalog(xml_file, catalog_dir, capsys):
    assert cli_main(
        ["snapshot", "build", str(xml_file), "bib", "--catalog", str(catalog_dir)]
    ) == 0
    capsys.readouterr()
    return catalog_dir


class TestOpenResolution:
    def test_xml_path_parses(self, xml_file):
        db = Database.open(xml_file)
        assert db.origin == "parse"
        assert db.snapshot is None
        assert db.backend_name == "steered" and db.case_sensitive is False
        assert db.node_count == 19

    def test_legacy_json_image(self, xml_file, tmp_path):
        image = tmp_path / "bib.json"
        storage.save(monet_transform(figure1_document()), image)
        db = Database.open(image)
        assert db.origin == "json image"
        assert db.node_count == 19

    def test_snap_file(self, built_catalog):
        bundle = built_catalog / "bib.snap"
        db = Database.open(bundle)
        assert db.origin == f"snapshot {bundle}"
        assert db.snapshot is not None
        # Bundle defaults: the fastest rebuild-free backend (vector
        # when NumPy is importable, else indexed), the bundle's case
        # mode.
        assert db.backend_name == snapshot_default_backend()

    def test_catalog_collection_by_bare_name(self, built_catalog):
        db = Database.open("bib", catalog=built_catalog)
        assert db.origin == f"snapshot {built_catalog}:bib"
        assert db.snapshot is not None

    def test_explicit_snapshot_name(self, built_catalog):
        db = Database.open(snapshot="bib", catalog=built_catalog)
        assert db.origin == f"snapshot {built_catalog}:bib"

    def test_xml_prefers_fresh_catalog_hit(self, built_catalog, xml_file):
        db = Database.open(xml_file, catalog=built_catalog)
        assert db.origin == f"snapshot {built_catalog}:bib"

    def test_stale_fingerprint_falls_back_to_parse(
        self, built_catalog, xml_file
    ):
        xml_file.write_text(
            xml_file.read_text(encoding="utf-8") + "\n", encoding="utf-8"
        )
        db = Database.open(xml_file, catalog=built_catalog)
        assert db.origin == "parse"

    def test_corrupt_catalog_falls_back_to_parse(self, built_catalog, xml_file):
        (built_catalog / "catalog.json").write_text("{broken", encoding="utf-8")
        db = Database.open(xml_file, catalog=built_catalog)
        assert db.origin == "parse"

    def test_missing_source_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no such file"):
            Database.open(tmp_path / "ghost.xml")

    def test_no_source_raises(self):
        with pytest.raises(ReproError, match="no source given"):
            Database.open()

    def test_option_overrides(self, xml_file):
        db = Database.open(xml_file, backend="indexed", case_sensitive=True)
        assert db.backend_name == "indexed" and db.case_sensitive is True

    def test_invalid_backend_rejected(self, xml_file):
        with pytest.raises(ValueError, match="unknown backend"):
            Database.open(xml_file, backend="warp")

    def test_open_all(self, built_catalog):
        databases = Database.open_all(built_catalog)
        assert set(databases) == {"bib"}
        assert databases["bib"].snapshot is not None

    def test_repro_open_reexport(self, xml_file):
        db = repro.open(str(xml_file))
        assert isinstance(db, Database)
        assert db.nearest("Bit", "1999").count == 1


class TestOptions:
    def test_frozen(self):
        options = DatabaseOptions()
        with pytest.raises(AttributeError):
            options.backend = "indexed"

    def test_replace_revalidates(self):
        with pytest.raises(ValueError, match="unknown backend"):
            DatabaseOptions().replace(backend="warp")

    def test_effective_defaults(self):
        assert DatabaseOptions().effective(None) == (False, "steered")

    def test_effective_snapshot_defaults(self, tmp_path):
        from repro.snapshot import read_snapshot, write_snapshot

        store = monet_transform(figure1_document())
        bundle = tmp_path / "b.snap"
        write_snapshot(store, bundle, case_sensitive=True)
        snapshot = read_snapshot(bundle)
        assert DatabaseOptions().effective(snapshot) == (
            True,
            snapshot_default_backend(),
        )
        explicit = DatabaseOptions(case_sensitive=False, backend="steered")
        assert explicit.effective(snapshot) == (False, "steered")


DATASETS = {
    "figure1": (
        lambda: figure1_document(),
        [("Bit", "1999"), ("Bob", "Byte"), ("Hack", "1999")],
    ),
    "plays": (
        lambda: plays_document(
            PlaysConfig(plays=2, acts_per_play=2, scenes_per_act=2)
        ),
        [("crown", "ghost"), ("love", "storm"), ("king", "night")],
    ),
    "dblp": (
        lambda: dblp_document(
            DblpConfig(papers_per_proceedings=4, articles_per_year=2)
        ),
        [("ICDE", "1999"), ("VLDB", "1994"), ("SIGMOD", "1988")],
    ),
    "multimedia": (
        lambda: multimedia_document(MultimediaConfig(items=8)),
        [("wavelet", "texture"), ("motion", "region")],
    ),
    "random": (
        lambda: random_document(7, nodes=600, max_children=4),
        [("wavelet", "texture"), ("histogram", "contour")],
    ),
}


@pytest.fixture(scope="module", params=sorted(DATASETS))
def dataset_db(request, tmp_path_factory):
    """Each bundled dataset opened through the facade, from an XML file."""
    build, queries = DATASETS[request.param]
    path = tmp_path_factory.mktemp("facade") / f"{request.param}.xml"
    path.write_text(serialize(build()), encoding="utf-8")
    return Database.open(path), queries


def as_concept_tuple(concept):
    return (
        concept.oid,
        concept.tag,
        str(concept.path),
        concept.joins,
        concept.spread,
        concept.depth,
        list(concept.origins),
        list(concept.terms),
    )


def as_answer_tuple(answer):
    return (
        answer["oid"],
        answer["tag"],
        answer["path"],
        answer["joins"],
        answer["spread"],
        answer["depth"],
        answer["origins"],
        answer["terms"],
    )


class TestFacadeDifferential:
    """Facade == direct low-level calls, answers and order alike."""

    def test_nearest_matches_engine(self, dataset_db):
        db, queries = dataset_db
        direct = NearestConceptEngine(
            db.store,
            case_sensitive=db.case_sensitive,
            backend=db.backend_name,
        )
        for terms in queries:
            expected = direct.nearest_concepts(*terms, limit=10)
            envelope = db.nearest(NearestRequest(terms=terms, limit=10))
            assert [as_answer_tuple(a) for a in envelope.answers] == [
                as_concept_tuple(c) for c in expected
            ], f"facade diverged on {terms!r}"
            assert envelope.count == len(expected)

    def test_nearest_matches_engine_from_snapshot(
        self, dataset_db, tmp_path_factory
    ):
        from repro.snapshot import write_snapshot

        db, queries = dataset_db
        bundle = tmp_path_factory.mktemp("bundles") / "d.snap"
        write_snapshot(db.store, bundle)
        snap_db = Database.open(bundle)
        direct = NearestConceptEngine(
            snap_db.store,
            case_sensitive=snap_db.case_sensitive,
            backend=snap_db.backend_name,
        )
        for terms in queries:
            expected = direct.nearest_concepts(*terms, limit=10)
            envelope = snap_db.nearest(NearestRequest(terms=terms, limit=10))
            assert [as_answer_tuple(a) for a in envelope.answers] == [
                as_concept_tuple(c) for c in expected
            ]

    def test_query_matches_processor(self, dataset_db):
        db, queries = dataset_db
        direct = QueryProcessor(
            db.store,
            search=SearchEngine(db.store, case_sensitive=db.case_sensitive),
            backend=db.backend_name,
        )
        terms = queries[0]
        text = (
            f"select meet($a,$b) from # $a, # $b "
            f"where $a contains '{terms[0]}' and $b contains '{terms[1]}'"
        )
        expected = direct.execute(text)
        envelope = db.query(QueryRequest(text=text, render=True))
        assert list(envelope.columns) == expected.columns
        assert [list(row) for row in envelope.rows] == [
            list(row) for row in expected.rows
        ]
        assert envelope.rendered == expected.render_answer(db.store)
        assert envelope.count == len(expected.rows)

    def test_search_matches_engine_hits(self, dataset_db):
        db, queries = dataset_db
        direct = NearestConceptEngine(
            db.store,
            case_sensitive=db.case_sensitive,
            backend=db.backend_name,
        )
        term = queries[0][0]
        expected = sorted(direct.term_hits(term).oids())
        envelope = db.search(term)
        assert [answer["oid"] for answer in envelope.answers] == expected


class TestEnvelopeSurface:
    def test_nearest_envelope_shape(self, xml_file):
        db = Database.open(xml_file, cache=32)
        envelope = db.nearest("Bit", "1999", snippets=True)
        assert envelope.kind == "nearest"
        answer = envelope.answers[0]
        assert answer["tag"] == "article" and answer["joins"] == 5
        assert "snippet" in answer
        assert envelope.stats["origin"] == "parse"
        assert envelope.stats["cache"]["misses"] >= 1
        # The whole response survives the JSON codec.
        rebuilt = ResultEnvelope.from_dict(envelope.to_dict())
        assert rebuilt.to_dict() == envelope.to_dict()

    def test_nearest_inline_and_request_agree(self, xml_file):
        db = Database.open(xml_file)
        inline = db.nearest("Bit", "1999", limit=3)
        typed = db.nearest(NearestRequest(terms=("Bit", "1999"), limit=3))
        assert inline.answers == typed.answers

    def test_nearest_rejects_mixed_call(self, xml_file):
        db = Database.open(xml_file)
        with pytest.raises(TypeError, match="not both"):
            db.nearest(NearestRequest(terms=("a", "b")), "c")

    def test_query_explain(self, xml_file):
        db = Database.open(xml_file)
        envelope = db.query(
            QueryRequest(text="select $o from bibliography/# $o", explain=True)
        )
        assert "plan over" in envelope.rendered
        assert envelope.count == 0
        assert db.explain("select $o from bibliography/# $o") == envelope.rendered

    def test_cached_repeat_hits(self, xml_file):
        db = Database.open(xml_file, cache=32)
        db.nearest("Bit", "1999")
        envelope = db.nearest("Bit", "1999")
        assert envelope.stats["cache"]["hits"] >= 1

    def test_stats_and_describe(self, built_catalog):
        db = Database.open("bib", catalog=built_catalog, cache=8)
        stats = db.stats()
        assert stats["origin"].startswith("snapshot")
        assert stats["backend"] == snapshot_default_backend()
        assert stats["kernel_tier"] in ("python", "vector", "native")
        assert stats["cache"]["maxsize"] == 8
        describe = db.describe()
        assert describe["node_count"] == 19
        assert describe["snapshot"]["vocabulary_size"] > 0

    def test_warm_up_builds_nothing_for_snapshot(self, built_catalog):
        from repro.core.lca_index import (
            clear_lca_index_cache,
            lca_index_cache_info,
        )
        from repro.fulltext.index import (
            clear_fulltext_index_cache,
            fulltext_index_cache_info,
        )

        clear_lca_index_cache()
        clear_fulltext_index_cache()
        db = Database.open("bib", catalog=built_catalog)
        db.warm_up()
        assert db.nearest("Bit", "1999").count == 1
        assert lca_index_cache_info().builds == 0
        assert fulltext_index_cache_info().builds == 0
