"""HTTP serving over the parallel execution layer.

The server must stay rebuild-free under concurrent traffic with the
compute running in pool workers, merge worker counters into one
process-tree ``/v1/stats`` view, and survive a worker being killed
mid-flight: the in-flight request fails cleanly (503), the pool
respawns, the server keeps serving.
"""

import http.client
import json
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro.api import Database, NearestRequest, ReproServer
from repro.datamodel.serializer import serialize
from repro.datasets import DblpConfig, dblp_document
from repro.monet.transform import monet_transform
from repro.snapshot import Catalog


@pytest.fixture(scope="module")
def catalog_dir(tmp_path_factory):
    document = dblp_document(
        DblpConfig(papers_per_proceedings=3, articles_per_year=2)
    )
    root = tmp_path_factory.mktemp("catalog")
    xml = root / "dblp.xml"
    xml.write_text(serialize(document), encoding="utf-8")
    Catalog(root / "cat").ingest("dblp", xml, shards=2)
    return root / "cat", document


def _post(server, payload, path="/v1/nearest"):
    connection = http.client.HTTPConnection(server.host, server.port)
    try:
        connection.request(
            "POST",
            path,
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _get(server, path):
    connection = http.client.HTTPConnection(server.host, server.port)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def test_parallel_serving_zero_rebuilds_and_merged_stats(catalog_dir):
    root, document = catalog_dir
    reference = Database(monet_transform(document))
    expected = reference.nearest(NearestRequest(terms=("ICDE", "1999")))
    # The fixtures above built indexes in *this* process (snapshot
    # writes, the reference engine); zero the process-global counters
    # so the assertion measures serving only.
    from repro.core.lca_index import clear_lca_index_cache
    from repro.fulltext.index import clear_fulltext_index_cache

    clear_lca_index_cache()
    clear_fulltext_index_cache()
    with repro.open(snapshot="dblp", catalog=root, workers=2) as database:
        with ReproServer(database, port=0) as server:
            def hammer(_index):
                status, payload = _post(
                    server, {"terms": ["ICDE", "1999"], "limit": 10}
                )
                assert status == 200
                return payload["answers"]

            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(pool.map(hammer, range(24)))
            for answers in results:
                assert answers == [dict(a) for a in expected.answers]

            status, stats = _get(server, "/v1/stats")
            assert status == 200
            # One process-tree view: serving process + both workers.
            assert stats["workers"] == 2
            assert stats["index_builds"]["lca"] == 0
            assert stats["index_builds"]["fulltext"] == 0
            executor = stats["collections"]["default"]["executor"]
            assert executor["mode"] == "parallel"
            assert len(executor["worker_pids"]) == 2


def test_worker_killed_mid_query_fails_cleanly_server_stays_up(catalog_dir):
    root, _document = catalog_dir
    with repro.open(snapshot="dblp", catalog=root, workers=1) as database:
        with ReproServer(database, port=0) as server:
            status, _payload = _post(server, {"terms": ["ICDE", "1999"]})
            assert status == 200
            pids = database.sharded.executor.stats()["worker_pids"]
            for pid in pids:
                os.kill(pid, signal.SIGKILL)
            # The first request to notice the corpse fails cleanly.
            deadline = time.monotonic() + 10
            saw_failure = False
            while time.monotonic() < deadline:
                status, payload = _post(server, {"terms": ["ICDE", "1999"]})
                if status == 503:
                    saw_failure = True
                    assert "worker died" in payload["error"]
                    break
                time.sleep(0.05)
            assert saw_failure, "killed worker never produced a 503"
            # ... and the server is still up: the pool respawned.
            status, payload = _post(server, {"terms": ["ICDE", "1999"]})
            assert status == 200
            assert payload["count"] >= 1
            status, _health = _get(server, "/healthz")
            assert status == 200


def test_respawn_under_sustained_concurrent_traffic(catalog_dir):
    """SIGKILL mid-hammer: bounded failure window, no duplicate builds.

    Concurrent traffic keeps flowing while every pool worker is killed.
    Requests in the failure window 503 cleanly; once any request
    succeeds again (the pool respawned), **no later request may fail**
    — and the respawned workers must reload their bundles with
    pre-seeded indexes, so the index-build counters stay at zero.
    """
    from concurrent.futures import ThreadPoolExecutor as _TPE

    root, _document = catalog_dir
    from repro.core.lca_index import clear_lca_index_cache
    from repro.fulltext.index import clear_fulltext_index_cache

    clear_lca_index_cache()
    clear_fulltext_index_cache()
    with repro.open(snapshot="dblp", catalog=root, workers=2) as database:
        with ReproServer(database, port=0) as server:
            stop_at = time.monotonic() + 12
            kill_at = time.monotonic() + 1.0
            killed = threading.Event()

            def hammer(worker_index):
                # (monotonic_time, status) per request, in order.
                timeline = []
                while time.monotonic() < stop_at:
                    status, _payload = _post(
                        server, {"terms": ["ICDE", "1999"], "limit": 5}
                    )
                    timeline.append((time.monotonic(), status))
                    if killed.is_set() and status == 200:
                        # Traffic has provably recovered; a couple more
                        # successes and this thread can stop.
                        if [s for _, s in timeline[-3:]] == [200] * 3:
                            break
                return timeline

            def assassin():
                while time.monotonic() < kill_at:
                    time.sleep(0.01)
                pids = database.sharded.executor.stats()["worker_pids"]
                for pid in pids:
                    os.kill(pid, signal.SIGKILL)
                killed.set()
                return pids

            with _TPE(max_workers=7) as pool:
                futures = [pool.submit(hammer, index) for index in range(6)]
                killed_pids = pool.submit(assassin).result()
                timelines = [future.result() for future in futures]

            assert killed_pids, "nothing was killed; the test proved nothing"
            merged = sorted(
                entry for timeline in timelines for entry in timeline
            )
            assert merged, "no traffic flowed"
            statuses = {status for _, status in merged}
            assert statuses <= {200, 503}, f"unexpected statuses: {statuses}"
            # Failures are *contained*: nothing after the last success
            # preceded by a failure window may fail again — i.e. once
            # the pool respawned and served, it stayed up.
            last_failure = max(
                (stamp for stamp, status in merged if status == 503),
                default=None,
            )
            successes_after = [
                stamp
                for stamp, status in merged
                if status == 200 and (last_failure is None or stamp > last_failure)
            ]
            assert successes_after, (
                "traffic never recovered after the kill "
                f"(last_failure={last_failure})"
            )

            status, stats = _get(server, "/v1/stats")
            assert status == 200
            executor_stats = stats["collections"]["default"]["executor"]
            # Exactly one respawn: concurrent failures must not each
            # tear down and rebuild the pool.
            assert executor_stats["respawns"] == 1
            # The respawned workers reloaded warm bundles: zero index
            # rebuilds anywhere in the process tree.
            assert stats["index_builds"]["lca"] == 0
            assert stats["index_builds"]["fulltext"] == 0
            # The replacement pool is a different set of processes
            # (worker_pids is cumulative: it keeps the dead workers'
            # counter rows, so check for *new* pids, not absence).
            fresh = set(executor_stats["worker_pids"]) - set(killed_pids)
            assert len(fresh) >= 2
            assert database.sharded.executor.stats()["respawns"] == 1
