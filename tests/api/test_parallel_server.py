"""HTTP serving over the parallel execution layer.

The server must stay rebuild-free under concurrent traffic with the
compute running in pool workers, merge worker counters into one
process-tree ``/v1/stats`` view, and survive a worker being killed
mid-flight: the in-flight request fails cleanly (503), the pool
respawns, the server keeps serving.
"""

import http.client
import json
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro.api import Database, NearestRequest, ReproServer
from repro.datamodel.serializer import serialize
from repro.datasets import DblpConfig, dblp_document
from repro.monet.transform import monet_transform
from repro.snapshot import Catalog


@pytest.fixture(scope="module")
def catalog_dir(tmp_path_factory):
    document = dblp_document(
        DblpConfig(papers_per_proceedings=3, articles_per_year=2)
    )
    root = tmp_path_factory.mktemp("catalog")
    xml = root / "dblp.xml"
    xml.write_text(serialize(document), encoding="utf-8")
    Catalog(root / "cat").ingest("dblp", xml, shards=2)
    return root / "cat", document


def _post(server, payload, path="/v1/nearest"):
    connection = http.client.HTTPConnection(server.host, server.port)
    try:
        connection.request(
            "POST",
            path,
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _get(server, path):
    connection = http.client.HTTPConnection(server.host, server.port)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def test_parallel_serving_zero_rebuilds_and_merged_stats(catalog_dir):
    root, document = catalog_dir
    reference = Database(monet_transform(document))
    expected = reference.nearest(NearestRequest(terms=("ICDE", "1999")))
    # The fixtures above built indexes in *this* process (snapshot
    # writes, the reference engine); zero the process-global counters
    # so the assertion measures serving only.
    from repro.core.lca_index import clear_lca_index_cache
    from repro.fulltext.index import clear_fulltext_index_cache

    clear_lca_index_cache()
    clear_fulltext_index_cache()
    with repro.open(snapshot="dblp", catalog=root, workers=2) as database:
        with ReproServer(database, port=0) as server:
            def hammer(_index):
                status, payload = _post(
                    server, {"terms": ["ICDE", "1999"], "limit": 10}
                )
                assert status == 200
                return payload["answers"]

            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(pool.map(hammer, range(24)))
            for answers in results:
                assert answers == [dict(a) for a in expected.answers]

            status, stats = _get(server, "/v1/stats")
            assert status == 200
            # One process-tree view: serving process + both workers.
            assert stats["workers"] == 2
            assert stats["index_builds"]["lca"] == 0
            assert stats["index_builds"]["fulltext"] == 0
            executor = stats["collections"]["default"]["executor"]
            assert executor["mode"] == "parallel"
            assert len(executor["worker_pids"]) == 2


def test_worker_killed_mid_query_fails_cleanly_server_stays_up(catalog_dir):
    root, _document = catalog_dir
    with repro.open(snapshot="dblp", catalog=root, workers=1) as database:
        with ReproServer(database, port=0) as server:
            status, _payload = _post(server, {"terms": ["ICDE", "1999"]})
            assert status == 200
            pids = database.sharded.executor.stats()["worker_pids"]
            for pid in pids:
                os.kill(pid, signal.SIGKILL)
            # The first request to notice the corpse fails cleanly.
            deadline = time.monotonic() + 10
            saw_failure = False
            while time.monotonic() < deadline:
                status, payload = _post(server, {"terms": ["ICDE", "1999"]})
                if status == 503:
                    saw_failure = True
                    assert "worker died" in payload["error"]
                    break
                time.sleep(0.05)
            assert saw_failure, "killed worker never produced a 503"
            # ... and the server is still up: the pool respawned.
            status, payload = _post(server, {"terms": ["ICDE", "1999"]})
            assert status == 200
            assert payload["count"] >= 1
            status, _health = _get(server, "/healthz")
            assert status == 200
            assert database.sharded.executor.stats()["respawns"] == 1
