"""Front-door hardening: admission, deadlines, coded errors, readiness."""

import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro.api import Database, ReproServer
from repro.api.admission import AdmissionController, LatencyWindow, OverloadedError
from repro.datamodel.parser import parse_document
from repro.monet.transform import monet_transform
from repro.exec.deadline import Deadline

FIGURE1_XML = """
<bib owner="Bob Byte">
  <article><author>Alice Bit</author><year>1999</year></article>
  <article><author>Carol Code</author><year>2001</year></article>
</bib>
"""


def _post(server, payload, path="/v1/nearest", headers=None):
    connection = http.client.HTTPConnection(server.host, server.port)
    try:
        connection.request(
            "POST",
            path,
            body=json.dumps(payload),
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        response = connection.getresponse()
        return (
            response.status,
            json.loads(response.read()),
            dict(response.getheaders()),
        )
    finally:
        connection.close()


def _get(server, path):
    connection = http.client.HTTPConnection(server.host, server.port)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


@pytest.fixture()
def server():
    database = Database(monet_transform(parse_document(FIGURE1_XML)))
    with ReproServer(database, port=0) as srv:
        yield srv


# -- the admission controller in isolation ------------------------------


def test_admission_bounds_concurrency_and_queue():
    controller = AdmissionController(
        max_concurrency=1, max_queue=0, queue_timeout=0.1
    )
    controller.admit()
    with pytest.raises(OverloadedError) as excinfo:
        controller.admit()
    assert excinfo.value.code == "overloaded"
    assert excinfo.value.retryable
    assert excinfo.value.retry_after >= 1.0
    controller.release(0.01)
    controller.admit()  # slot freed: admitted again
    controller.release(0.01)
    snapshot = controller.snapshot()
    assert snapshot["admitted"] == 2
    assert snapshot["shed"] == 1
    assert snapshot["in_flight"] == 0


def test_admission_queued_request_gets_freed_slot():
    controller = AdmissionController(
        max_concurrency=1, max_queue=4, queue_timeout=5.0
    )
    controller.admit()
    admitted = threading.Event()

    def waiter():
        controller.admit()
        admitted.set()

    thread = threading.Thread(target=waiter, daemon=True)
    thread.start()
    time.sleep(0.05)
    assert not admitted.is_set()
    assert controller.snapshot()["queued"] == 1
    controller.release(0.01)
    assert admitted.wait(timeout=2.0)
    thread.join(timeout=2.0)


def test_admission_queue_timeout_sheds():
    controller = AdmissionController(
        max_concurrency=1, max_queue=4, queue_timeout=0.05
    )
    controller.admit()
    with pytest.raises(OverloadedError):
        controller.admit()
    assert controller.snapshot()["queue_timeouts"] == 1


def test_admission_respects_request_deadline():
    controller = AdmissionController(
        max_concurrency=1, max_queue=4, queue_timeout=30.0
    )
    controller.admit()
    started = time.monotonic()
    with pytest.raises(OverloadedError):
        # The request's own budget (50 ms) is tighter than the queue
        # timeout: it must give up on the tight one.
        controller.admit(Deadline.after(0.05))
    assert time.monotonic() - started < 5.0


def test_latency_window_percentiles():
    window = LatencyWindow(size=100)
    assert window.percentiles()["count"] == 0
    for millis in range(1, 101):
        window.record(millis / 1000.0)
    p = window.percentiles()
    assert p["count"] == 100
    assert p["p50_ms"] == pytest.approx(51.0)
    assert p["p95_ms"] == pytest.approx(96.0)
    assert p["p99_ms"] == pytest.approx(100.0)


# -- over HTTP ----------------------------------------------------------


def test_error_envelope_carries_code_and_retryable(server):
    status, body, _headers = _post(server, {"kind": "nearest", "terms": []})
    assert status == 400
    assert body["code"]
    assert body["retryable"] is False

    status, body, _headers = _post(
        server, {"text": "select nonsense((("}, path="/v1/query"
    )
    assert status == 400
    assert body["code"] == "query_error"


def test_overload_sheds_with_retry_after():
    database = Database(monet_transform(parse_document(FIGURE1_XML)))
    with ReproServer(
        database,
        port=0,
        max_concurrency=1,
        max_queue=0,
        queue_timeout=0.2,
    ) as server:
        release = threading.Event()
        entered = threading.Event()
        original = server.dispatch

        def slow_dispatch(db, request):
            entered.set()
            release.wait(timeout=10)
            return original(db, request)

        server.dispatch = slow_dispatch
        try:
            with ThreadPoolExecutor(max_workers=2) as pool:
                blocker = pool.submit(
                    _post, server, {"terms": ["Bit", "1999"]}
                )
                assert entered.wait(timeout=5)
                status, body, headers = _post(
                    server, {"terms": ["Bit", "1999"]}
                )
                assert status == 503
                assert body["code"] == "overloaded"
                assert body["retryable"] is True
                assert int(headers["Retry-After"]) >= 1
                release.set()
                status, _body, _headers = blocker.result(timeout=10)
                assert status == 200
        finally:
            release.set()
            server.dispatch = original
        status, stats = _get(server, "/v1/stats")
        assert stats["admission"]["shed"] == 1
        assert stats["admission"]["latency"]["count"] >= 1


def test_deadline_header_maps_to_504(server):
    status, body, _headers = _post(
        server,
        {"terms": ["Bit", "1999"]},
        headers={"X-Repro-Deadline-Ms": "0.001"},
    )
    assert status == 504
    assert body["code"] == "deadline_exceeded"
    assert body["retryable"] is True


def test_invalid_deadline_header_is_400(server):
    for bad in ("abc", "-5", "0"):
        status, body, _headers = _post(
            server,
            {"terms": ["Bit", "1999"]},
            headers={"X-Repro-Deadline-Ms": bad},
        )
        assert status == 400, bad


def test_healthz_is_liveness_readyz_is_readiness(server):
    status, live = _get(server, "/healthz")
    assert status == 200
    assert live["status"] == "ok"
    assert live["collections"] == ["default"]

    status, ready = _get(server, "/readyz")
    assert status == 200
    assert ready["status"] == "ok"
    assert "default" in ready["collections"]
    assert "admission" in ready


def test_stats_exposes_queue_depth_and_percentiles(server):
    for _ in range(3):
        status, _body, _headers = _post(server, {"terms": ["Bit", "1999"]})
        assert status == 200
    # The handler writes the response *before* releasing its admission
    # slot, so an immediate read may still see the last POST in flight.
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        status, stats = _get(server, "/v1/stats")
        assert status == 200
        if stats["admission"]["in_flight"] == 0:
            break
        time.sleep(0.01)
    admission = stats["admission"]
    assert admission["in_flight"] == 0
    assert admission["queued"] == 0
    assert admission["max_concurrency"] == 8
    latency = admission["latency"]
    assert latency["count"] >= 3
    assert latency["p50_ms"] is not None
    assert latency["p95_ms"] >= latency["p50_ms"] >= 0
    assert latency["p99_ms"] >= latency["p95_ms"]


def test_shutdown_reports_clean_stop():
    database = Database(monet_transform(parse_document(FIGURE1_XML)))
    server = ReproServer(database, port=0)
    server.start()
    assert server.shutdown() is True
    # Idempotent: a second shutdown of a stopped server is clean too.
    assert server.shutdown() is True


def test_get_routes_bypass_admission():
    # Liveness and stats must answer even when the request path is
    # saturated — a health check that queues behind traffic is useless.
    database = Database(monet_transform(parse_document(FIGURE1_XML)))
    with ReproServer(
        database, port=0, max_concurrency=1, max_queue=0
    ) as server:
        server.admission.admit()  # saturate the one slot
        try:
            status, _live = _get(server, "/healthz")
            assert status == 200
            status, _stats = _get(server, "/v1/stats")
            assert status == 200
        finally:
            server.admission.release()
