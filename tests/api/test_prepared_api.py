"""Prepared statements through the facade and over HTTP.

Covers the prepare → execute lifecycle (deterministic handles, binding
per call, unknown-handle errors), the plan payload in envelope stats,
and the planner/prepared metric families on ``/v1/metrics``.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.api import Database, DatabaseOptions, ReproServer
from repro.api.envelopes import (
    ExecuteRequest,
    PrepareRequest,
    QueryRequest,
    ResultEnvelope,
)
from repro.datamodel.errors import QueryPlanError
from repro.datasets import figure1_document
from repro.monet.transform import monet_transform

TEMPLATE = "select $a from # $a where $a = $v"


def http_json(url, payload=None):
    request = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture()
def database():
    db = Database(
        monet_transform(figure1_document()),
        options=DatabaseOptions(backend="indexed", cache=64),
    )
    yield db
    db.close()


class TestFacade:
    def test_prepare_is_deterministic_and_idempotent(self, database):
        first = database.prepare(TEMPLATE)
        second = database.prepare(PrepareRequest(text=TEMPLATE))
        assert first["handle"] == second["handle"]
        assert first["handle"].startswith("q")
        assert first["parameters"] == ["v"]

    def test_prepare_surfaces_syntax_errors(self, database):
        with pytest.raises(Exception):
            database.prepare("selekt nonsense")

    def test_execute_binds_per_call(self, database):
        handle = database.prepare(TEMPLATE)["handle"]
        bit = database.execute(handle, params={"v": "Bit"})
        ben = database.execute(handle, params={"v": "Ben"})
        assert bit.rows and ben.rows
        assert bit.rows != ben.rows

    def test_execute_matches_adhoc_query(self, database):
        handle = database.prepare(TEMPLATE)["handle"]
        prepared = database.execute(handle, params={"v": "Bit"})
        adhoc = database.query(
            QueryRequest(text=TEMPLATE, params={"v": "Bit"})
        )
        assert prepared.rows == adhoc.rows
        assert prepared.columns == adhoc.columns

    def test_execute_unknown_handle_raises(self, database):
        with pytest.raises(QueryPlanError):
            database.execute("q0000000000000000", params={"v": "x"})

    def test_execute_stats_carry_plan_and_plan_cache(self, database):
        handle = database.prepare(TEMPLATE)["handle"]
        envelope = database.execute(
            ExecuteRequest(handle=handle, params={"v": "Bit"})
        )
        plan = envelope.stats["plan"]
        assert plan["conditions"][0]["access"] == "value-index"
        assert set(envelope.stats["plan_cache"]) == {
            "hits",
            "misses",
            "currsize",
        }

    def test_plan_reused_across_distinct_bindings(self, database):
        handle = database.prepare(TEMPLATE)["handle"]
        database.execute(handle, params={"v": "Bit"})
        database.execute(handle, params={"v": "Ben"})
        database.execute(handle, params={"v": "1999"})
        info = database.plan_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 2

    def test_adhoc_query_stats_carry_plan(self, database):
        envelope = database.query(
            QueryRequest(text=TEMPLATE, params={"v": "Bit"})
        )
        assert envelope.stats["plan"]["mode"] == "enumeration"

    def test_metrics_families_registered(self, database):
        database.prepare(TEMPLATE)
        names = {
            metric.name for metric in database.metrics()  # type: ignore
        }
        assert "repro_prepared_statements" in names
        assert "repro_prepared_executions_total" in names
        assert "repro_planner_plan_cache_hits" in names
        assert "repro_planner_plan_cache_misses" in names


@pytest.fixture(scope="module")
def server():
    database = Database(
        monet_transform(figure1_document()),
        options=DatabaseOptions(backend="indexed", cache=64),
    )
    with ReproServer({"figure1": database}, port=0) as running:
        yield running


class TestHttp:
    def test_prepare_execute_round_trip(self, server):
        status, prepared = http_json(
            server.url("/v1/prepare"), {"text": TEMPLATE}
        )
        assert status == 200
        assert prepared["parameters"] == ["v"]
        handle = prepared["handle"]

        status, executed = http_json(
            server.url("/v1/execute"),
            {"handle": handle, "params": {"v": "Bit"}},
        )
        assert status == 200
        envelope = ResultEnvelope.from_dict(executed)
        assert envelope.count == 1

        status, adhoc = http_json(
            server.url("/v1/query"),
            {"text": TEMPLATE, "params": {"v": "Bit"}},
        )
        assert status == 200
        assert executed["rows"] == adhoc["rows"]

    def test_execute_unknown_handle_is_400(self, server):
        status, body = http_json(
            server.url("/v1/execute"),
            {"handle": "q0000000000000000", "params": {"v": "x"}},
        )
        assert status == 400
        assert body["code"] == "query_error"

    def test_execute_missing_binding_is_400(self, server):
        status, prepared = http_json(
            server.url("/v1/prepare"), {"text": TEMPLATE}
        )
        handle = prepared["handle"]
        status, body = http_json(
            server.url("/v1/execute"), {"handle": handle}
        )
        assert status == 400
        assert body["code"] == "query_error"

    def test_metrics_expose_prepared_series(self, server):
        http_json(server.url("/v1/prepare"), {"text": TEMPLATE})
        _, prepared = http_json(server.url("/v1/prepare"), {"text": TEMPLATE})
        for value in ("Bit", "Ben"):
            status, _body = http_json(
                server.url("/v1/execute"),
                {"handle": prepared["handle"], "params": {"v": value}},
            )
            assert status == 200
        with urllib.request.urlopen(server.url("/v1/metrics")) as response:
            text = response.read().decode()
        assert 'repro_prepared_statements{collection="figure1"}' in text
        assert 'repro_prepared_executions_total{collection="figure1"}' in text
        assert 'repro_planner_plan_cache_hits{collection="figure1"}' in text
