"""Acceptance: a 2×2 localhost cluster survives replica kills under load.

The ISSUE-7 acceptance scenario end to end: a 2-shard catalog served by
2 socket-worker replicas per shard, hammered by 64 concurrent clients
while one replica of *every* shard is SIGKILLed mid-run.  The bar:

* zero wrong answers — every 200 is byte-identical to the baseline;
* failures are graceful — only 503s, each with a ``Retry-After``
  header and a machine-readable ``code``;
* the cluster heals — traffic recovers, ``/readyz`` returns to ``ok``
  once the prober respawns the dead replicas;
* the run is observable — ``/v1/stats`` exposes queue depth, latency
  percentiles and per-replica health rows.
"""

import http.client
import json
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro.api import Database, NearestRequest, ReproServer
from repro.datamodel.serializer import serialize
from repro.datasets import DblpConfig, dblp_document
from repro.monet.transform import monet_transform
from repro.snapshot import Catalog

HAMMER_CLIENTS = 64
REQUESTS_PER_CLIENT = 6


@pytest.fixture(scope="module")
def catalog_dir(tmp_path_factory):
    document = dblp_document(
        DblpConfig(papers_per_proceedings=3, articles_per_year=2)
    )
    root = tmp_path_factory.mktemp("catalog")
    xml = root / "dblp.xml"
    xml.write_text(serialize(document), encoding="utf-8")
    Catalog(root / "cat").ingest("dblp", xml, shards=2)
    return root / "cat", document


def _post(server, payload, path="/v1/nearest"):
    connection = http.client.HTTPConnection(server.host, server.port)
    try:
        connection.request(
            "POST",
            path,
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return (
            response.status,
            json.loads(response.read()),
            dict(response.getheaders()),
        )
    finally:
        connection.close()


def _get(server, path):
    connection = http.client.HTTPConnection(server.host, server.port)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def test_replica_kill_under_conc64_hammer(catalog_dir):
    root, document = catalog_dir
    reference = Database(monet_transform(document))
    expected = reference.nearest(NearestRequest(terms=("ICDE", "1999")))
    baseline = [dict(a) for a in expected.answers]

    with repro.open(snapshot="dblp", catalog=root, replicas=2) as database:
        executor = database.sharded.executor
        assert [len(group) for group in executor.replicas] == [2, 2]
        with ReproServer(
            database,
            port=0,
            max_concurrency=8,
            max_queue=HAMMER_CLIENTS * 2,
            queue_timeout=10.0,
        ) as server:
            # Prove the path before injecting any faults.
            status, body, _headers = _post(
                server, {"terms": ["ICDE", "1999"], "limit": 10}
            )
            assert status == 200
            assert body["answers"] == baseline

            kill_gate = threading.Barrier(HAMMER_CLIENTS + 1, timeout=60)
            results = []  # (status, body, headers) triples
            results_lock = threading.Lock()

            def hammer(_client_index):
                kill_gate.wait()  # all clients + assassin start together
                for _ in range(REQUESTS_PER_CLIENT):
                    outcome = _post(server, {"terms": ["ICDE", "1999"], "limit": 10})
                    with results_lock:
                        results.append(outcome)

            def assassin():
                kill_gate.wait()
                time.sleep(0.3)  # let the hammer land mid-flight
                killed = []
                for group in executor.replicas:
                    victim = group[0]
                    assert victim.process is not None
                    killed.append(victim.process.pid)
                    os.kill(victim.process.pid, signal.SIGKILL)
                return killed

            with ThreadPoolExecutor(max_workers=HAMMER_CLIENTS + 1) as pool:
                futures = [
                    pool.submit(hammer, index)
                    for index in range(HAMMER_CLIENTS)
                ]
                killed_pids = pool.submit(assassin).result()
                for future in futures:
                    future.result()

            assert len(killed_pids) == 2, "one replica per shard"
            assert len(results) == HAMMER_CLIENTS * REQUESTS_PER_CLIENT

            statuses = {status for status, _body, _headers in results}
            assert statuses <= {200, 503}, f"unexpected statuses: {statuses}"
            # Zero wrong answers: every success is byte-identical.
            wrong = [
                body
                for status, body, _headers in results
                if status == 200 and body["answers"] != baseline
            ]
            assert not wrong, f"{len(wrong)} divergent answers"
            # Every failure is graceful: coded, retryable, Retry-After.
            for status, body, headers in results:
                if status != 503:
                    continue
                assert body["code"] in ("shard_unavailable", "overloaded")
                assert body["retryable"] is True
                assert int(headers["Retry-After"]) >= 1
            successes = sum(
                1 for status, _body, _headers in results if status == 200
            )
            assert successes > 0, "the hammer never got a single answer"

            # The cluster absorbed the kills: failovers were taken, and
            # traffic recovered — the next request answers correctly.
            status, body, _headers = _post(
                server, {"terms": ["ICDE", "1999"], "limit": 10}
            )
            assert status == 200
            assert body["answers"] == baseline
            assert executor.stats()["failovers"] >= 1

            # ... and heals: the prober respawns the dead replicas
            # until /readyz reports full headroom again.
            deadline = time.monotonic() + 30
            ready = {}
            while time.monotonic() < deadline:
                status, ready = _get(server, "/readyz")
                if status == 200 and ready["status"] == "ok":
                    break
                time.sleep(0.2)
            assert ready["status"] == "ok", f"never healed: {ready}"

            # Observability: queue depth, percentiles, replica rows.
            status, stats = _get(server, "/v1/stats")
            assert status == 200
            admission = stats["admission"]
            assert admission["max_concurrency"] == 8
            assert {"in_flight", "queued", "admitted", "shed"} <= set(
                admission
            )
            latency = admission["latency"]
            assert latency["count"] > 0
            assert latency["p50_ms"] is not None
            assert latency["p99_ms"] >= latency["p95_ms"] >= latency["p50_ms"]
            executor_stats = stats["collections"]["default"]["executor"]
            assert executor_stats["mode"] == "cluster"
            assert executor_stats["respawns"] >= 2
            for shard_rows in executor_stats["replicas"]:
                assert shard_rows["healthy_replicas"] >= 1
                for row in shard_rows["replicas"]:
                    assert {"state", "pid", "failures"} <= set(row)


def test_cluster_readyz_degrades_while_replica_down(catalog_dir):
    """A shard on its last healthy replica reads as ``degraded``."""
    root, _document = catalog_dir
    with repro.open(snapshot="dblp", catalog=root, replicas=2) as database:
        executor = database.sharded.executor
        with ReproServer(database, port=0) as server:
            status, ready = _get(server, "/readyz")
            assert status == 200
            assert ready["status"] == "ok"

            victim = executor.replicas[0][0]
            pid = victim.process.pid
            os.kill(pid, signal.SIGKILL)
            # Drive traffic until the breaker notices the corpse.
            saw_degraded = False
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                _post(server, {"terms": ["ICDE", "1999"], "limit": 10})
                status, ready = _get(server, "/readyz")
                assert status == 200  # degraded still serves
                if ready["status"] == "degraded":
                    saw_degraded = True
                    break
                time.sleep(0.05)
            assert saw_degraded, f"readiness never degraded: {ready}"
            shard0 = ready["collections"]["default"]["shards"][0]
            assert shard0["status"] == "degraded"
            assert shard0["healthy_replicas"] == 1

            # The prober respawns the replica; readiness returns to ok.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status, ready = _get(server, "/readyz")
                if ready["status"] == "ok":
                    break
                time.sleep(0.2)
            assert ready["status"] == "ok", f"never healed: {ready}"
