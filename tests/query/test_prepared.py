"""Parameterized queries: parsing, binding, plan memo, result cache.

The satellite regression lives here too: the result-cache key must
include the bindings, so two executions of the same template with
different parameters can never serve each other's rows.
"""

import pytest

from repro.datamodel.errors import QueryPlanError
from repro.query.ast import ParamRef
from repro.query.executor import QueryProcessor
from repro.query.parser import parse_query

TEMPLATE = "select $a from # $a where $a = $v"


class TestParsingAndBinding:
    def test_parameter_marker_parses_as_paramref(self):
        query = parse_query(TEMPLATE)
        assert isinstance(query.conditions[0].value, ParamRef)
        assert query.parameters == ("v",)

    def test_parameters_in_condition_order(self):
        query = parse_query(
            "select $a from # $a where $a >= $low and $a <= $high"
        )
        assert query.parameters == ("low", "high")

    def test_bind_substitutes_literals(self):
        bound = parse_query(TEMPLATE).bind({"v": "Bit"})
        assert bound.conditions[0].value == "Bit"
        assert bound.parameters == ()

    def test_bind_missing_parameter_raises(self):
        with pytest.raises(KeyError):
            parse_query(TEMPLATE).bind({})

    def test_bind_unknown_parameter_raises(self):
        with pytest.raises(ValueError):
            parse_query(TEMPLATE).bind({"v": "Bit", "w": "stray"})


class TestProcessorBindings:
    def test_bound_execution_matches_literal_query(self, figure1_store):
        processor = QueryProcessor(figure1_store, None)
        bound = processor.execute(TEMPLATE, bindings={"v": "Bit"})
        literal = processor.execute("select $a from # $a where $a = 'Bit'")
        assert bound.rows == literal.rows and bound.rows

    def test_unbound_execution_is_a_plan_error(self, figure1_store):
        processor = QueryProcessor(figure1_store, None)
        with pytest.raises(QueryPlanError):
            processor.execute(TEMPLATE)

    def test_unknown_binding_is_a_plan_error(self, figure1_store):
        processor = QueryProcessor(figure1_store, None)
        with pytest.raises(QueryPlanError):
            processor.execute(TEMPLATE, bindings={"v": "Bit", "w": "x"})

    def test_result_cache_key_includes_bindings(self, figure1_store):
        # The regression: with a shared template text, different
        # bindings MUST miss each other's result-cache entries.
        processor = QueryProcessor(figure1_store, None, cache=16)
        bit = processor.execute(TEMPLATE, bindings={"v": "Bit"})
        ben = processor.execute(TEMPLATE, bindings={"v": "Ben"})
        assert bit.rows != ben.rows
        assert processor.cache_info().hits == 0
        assert processor.cache_info().misses == 2
        # Same bindings do hit — and return the identical rows.
        again = processor.execute(TEMPLATE, bindings={"v": "Bit"})
        assert again.rows == bit.rows
        assert processor.cache_info().hits == 1

    def test_binding_order_does_not_split_cache_entries(self, figure1_store):
        processor = QueryProcessor(figure1_store, None, cache=16)
        text = "select $a from # $a where $a >= $low and $a <= $high"
        processor.execute(text, bindings={"low": "1999", "high": "2000"})
        processor.execute(text, bindings={"high": "2000", "low": "1999"})
        assert processor.cache_info().hits == 1


class TestTemplateExecution:
    def test_plan_cached_across_distinct_bindings(self, figure1_store):
        processor = QueryProcessor(figure1_store, None)
        template = parse_query(TEMPLATE)
        first = processor.execute_template(
            template, text=TEMPLATE, bindings={"v": "Bit"}
        )
        second = processor.execute_template(
            template, text=TEMPLATE, bindings={"v": "Ben"}
        )
        info = processor.plan_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 1
        assert info["currsize"] == 1
        assert first.rows != second.rows

    def test_template_answers_match_adhoc(self, figure1_store):
        processor = QueryProcessor(figure1_store, None)
        template = parse_query(TEMPLATE)
        for value in ("Bit", "Ben", "1999", "absent"):
            prepared = processor.execute_template(
                template, text=TEMPLATE, bindings={"v": value}
            )
            adhoc = QueryProcessor(figure1_store, None).execute(
                TEMPLATE, bindings={"v": value}
            )
            assert prepared.columns == adhoc.columns
            assert prepared.rows == adhoc.rows, value

    def test_template_bind_errors_surface_as_plan_errors(self, figure1_store):
        processor = QueryProcessor(figure1_store, None)
        template = parse_query(TEMPLATE)
        with pytest.raises(QueryPlanError):
            processor.execute_template(template, text=TEMPLATE, bindings={})
        with pytest.raises(QueryPlanError):
            processor.execute_template(
                template, text=TEMPLATE, bindings={"v": "x", "stray": "y"}
            )

    def test_result_plan_reports_actual_rows(self, figure1_store):
        processor = QueryProcessor(figure1_store, None)
        result = processor.execute(TEMPLATE, bindings={"v": "Bit"})
        (cond,) = result.plan["conditions"]
        assert cond["access"] == "value-index"
        assert cond["actual_rows"] == 1
