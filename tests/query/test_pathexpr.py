"""Unit tests for path patterns: wildcards and variables."""

import pytest

from repro.datamodel.paths import Path
from repro.query.pathexpr import (
    AnyStep,
    AttributeStep,
    LiteralStep,
    PathPattern,
    SequenceWildcard,
    VariableStep,
)


def pattern(*steps):
    return PathPattern(list(steps))


class TestMatching:
    def test_literal_match(self):
        p = pattern(LiteralStep("a"), LiteralStep("b"))
        assert p.match(Path.of("a", "b")) == {}
        assert p.match(Path.of("a")) is None
        assert p.match(Path.of("a", "b", "c")) is None

    def test_variable_binds_tag(self):
        p = pattern(LiteralStep("bib"), VariableStep("T"))
        assert p.match(Path.of("bib", "article")) == {"T": "article"}

    def test_repeated_variable_must_agree(self):
        p = pattern(VariableStep("T"), VariableStep("T"))
        assert p.match(Path.of("a", "a")) == {"T": "a"}
        assert p.match(Path.of("a", "b")) is None

    def test_any_step(self):
        p = pattern(AnyStep(), LiteralStep("b"))
        assert p.match(Path.of("x", "b")) == {}
        assert p.match(Path.of("b")) is None

    def test_sequence_wildcard_zero_or_more(self):
        p = pattern(LiteralStep("a"), SequenceWildcard(), LiteralStep("z"))
        assert p.match(Path.of("a", "z")) == {}
        assert p.match(Path.of("a", "m", "z")) == {}
        assert p.match(Path.of("a", "m", "n", "z")) == {}
        assert p.match(Path.of("a", "z", "q")) is None

    def test_leading_wildcard(self):
        p = pattern(SequenceWildcard(), LiteralStep("year"))
        assert p.match(Path.of("bib", "article", "year")) == {}
        assert p.match(Path.of("year")) == {}

    def test_wildcard_then_variable(self):
        p = pattern(LiteralStep("bib"), SequenceWildcard(), VariableStep("T"))
        assert p.match(Path.of("bib", "article", "year")) == {"T": "year"}
        # shortest-first: the wildcard absorbs zero steps when possible
        assert p.match(Path.of("bib", "x")) == {"T": "x"}

    def test_attribute_step(self):
        p = pattern(
            LiteralStep("bib"), LiteralStep("article"), AttributeStep("key")
        )
        path = Path.parse("bib/article@key")
        assert p.match(path) == {}
        assert p.match(Path.of("bib", "article")) is None

    def test_wildcard_does_not_cross_attribute(self):
        """'#' stands for a sequence of element tags only."""
        p = pattern(LiteralStep("bib"), SequenceWildcard())
        assert p.match(Path.parse("bib/article")) == {}
        assert p.match(Path.parse("bib/article@key")) is None

    def test_element_steps_do_not_match_attributes(self):
        p = pattern(LiteralStep("bib"), LiteralStep("key"))
        assert p.match(Path.parse("bib@key")) is None
        assert pattern(LiteralStep("bib"), AnyStep()).match(
            Path.parse("bib@key")
        ) is None

    def test_empty_pattern_matches_empty_path(self):
        assert pattern().match(Path()) == {}
        assert pattern().match(Path.of("a")) is None


class TestMatchingPids:
    def test_against_figure1_summary(self, figure1_store):
        p = pattern(
            LiteralStep("bibliography"),
            SequenceWildcard(),
            LiteralStep("year"),
        )
        matches = p.matching_pids(figure1_store.summary)
        assert len(matches) == 1
        (pid, bindings) = matches[0]
        assert str(figure1_store.summary.path(pid)) == (
            "bibliography/institute/article/year"
        )

    def test_variable_bindings_per_pid(self, figure1_store):
        p = pattern(
            LiteralStep("bibliography"),
            LiteralStep("institute"),
            VariableStep("T"),
        )
        matches = p.matching_pids(figure1_store.summary)
        assert [b["T"] for _, b in matches] == ["article"]


class TestMatchMemo:
    def test_repeat_calls_return_equal_fresh_lists(self, figure1_store):
        p = pattern(SequenceWildcard(), LiteralStep("year"))
        first = p.matching_pids(figure1_store.summary)
        second = p.matching_pids(figure1_store.summary)
        assert first == second
        assert first is not second  # callers may mutate their copy
        first.append((999, {}))
        assert p.matching_pids(figure1_store.summary) == second

    def test_equal_pattern_shares_memo(self, figure1_store):
        summary = figure1_store.summary
        pattern(SequenceWildcard(), LiteralStep("year")).matching_pids(summary)
        cache = summary._pattern_match_cache
        size_before = len(cache)
        pattern(SequenceWildcard(), LiteralStep("year")).matching_pids(summary)
        assert len(cache) == size_before

    def test_interning_a_new_path_invalidates(self, figure1_doc):
        from repro.monet import monet_transform

        summary = monet_transform(figure1_doc).summary
        p = pattern(SequenceWildcard(), LiteralStep("epilogue"))
        assert p.matching_pids(summary) == []
        new_pid = summary.intern(Path.of("bibliography", "epilogue"))
        assert [pid for pid, _ in p.matching_pids(summary)] == [new_pid]


class TestStructure:
    def test_attribute_must_be_last(self):
        with pytest.raises(ValueError):
            pattern(AttributeStep("key"), LiteralStep("x"))

    def test_str_round_trip_shape(self):
        p = pattern(
            LiteralStep("bib"),
            SequenceWildcard(),
            VariableStep("T"),
            AttributeStep("key"),
        )
        assert str(p) == "bib/#/%T@key"

    def test_variables_in_order(self):
        p = pattern(VariableStep("B"), VariableStep("A"), VariableStep("B"))
        assert p.variables == ["B", "A"]

    def test_equality_and_hash(self):
        assert pattern(LiteralStep("a")) == pattern(LiteralStep("a"))
        assert hash(pattern(LiteralStep("a"))) == hash(pattern(LiteralStep("a")))
