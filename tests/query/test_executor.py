"""Unit tests for query execution: enumeration and aggregation modes."""

import pytest

from repro.datamodel.errors import QueryPlanError
from repro.datasets.figure1 import FIGURE1_OIDS as O
from repro.query.executor import QueryProcessor, QueryResult, run_query


@pytest.fixture(scope="module")
def qp(request):
    return QueryProcessor(request.getfixturevalue("figure1_store"))


class TestEnumeration:
    def test_select_all_on_path(self, qp):
        result = qp.execute("select $o from bibliography/institute/article $o")
        assert result.column("$o") == [O["article1"], O["article2"]]

    def test_tag_and_path_items(self, qp):
        result = qp.execute(
            "select tag($o), path($o) from bibliography/institute/article $o"
        )
        assert result.rows[0] == ("article", "bibliography/institute/article")

    def test_text_item(self, qp):
        result = qp.execute(
            "select text($o) from bibliography/institute/article/year $o"
        )
        assert result.column("text($o)") == ["1999", "1999"]

    def test_contains_closure_semantics(self, qp):
        """$o ranges over all nodes whose offspring contains the term."""
        result = qp.execute(
            "select tag($o) from bibliography/# $o where $o contains 'Bit'"
        )
        # every node on the root path of the witness, the materialized
        # cdata node included (it is a node of the syntax tree)
        assert sorted(result.column("tag($o)")) == [
            "article",
            "author",
            "bibliography",
            "cdata",
            "institute",
            "lastname",
        ]

    def test_cross_product_semantics(self, qp):
        result = qp.execute(
            "select tag($a), tag($b) from bibliography/institute/article $a, "
            "bibliography/institute/article $b"
        )
        assert len(result) == 4  # 2 × 2 — the redundancy the paper shows

    def test_distinct(self, qp):
        result = qp.execute(
            "select distinct tag($o) from bibliography/institute/article/%T $o"
        )
        assert sorted(result.column("tag($o)")) == ["author", "title", "year"]

    def test_path_variable_binding_cell(self, qp):
        result = qp.execute(
            "select %T from bibliography/institute/article/%T $o "
            "where $o contains '1999'"
        )
        assert result.column("%T") == ["year", "year"]

    def test_equals_condition(self, qp):
        result = qp.execute(
            "select tag($o) from bibliography/#/%L $o where $o = 'BB99'"
        )
        assert result.column("tag($o)") == ["article"]

    def test_max_rows_guard(self, figure1_store):
        limited = QueryProcessor(figure1_store, max_rows=2)
        with pytest.raises(QueryPlanError):
            limited.execute(
                "select tag($a), tag($b) from bibliography/# $a, bibliography/# $b"
            )

    def test_no_conditions_no_select_vars(self, qp):
        result = qp.execute("select %T from bibliography/%T $o")
        assert result.column("%T") == ["institute"]


class TestAggregation:
    def test_paper_meet_query(self, qp):
        result = qp.execute(
            """
            select meet($o1, $o2)
            from   bibliography/#/%T1 $o1, bibliography/#/%T2 $o2
            where  $o1 contains 'Bit' and $o2 contains '1999'
            """
        )
        assert result.rows == [(O["article1"],)]

    def test_meet_minimal_witnesses(self, qp):
        """The closure ancestors never pollute the meet inputs."""
        result = qp.execute(
            "select meet($a, $b) from # $a, # $b "
            "where $a contains 'Ben' and $b contains 'Bit'"
        )
        assert result.rows == [(O["author1"],)]

    def test_meet_exclude_root(self, qp):
        result = qp.execute(
            "select meet($a, $b) exclude root from # $a, # $b "
            "where $a contains 'How' and $b contains 'RSI'"
        )
        # meet is the institute (not the root) so it survives
        assert result.rows == [(O["institute"],)]
        result2 = qp.execute(
            "select meet($a, $b) exclude bibliography/institute from # $a, # $b "
            "where $a contains 'How' and $b contains 'RSI'"
        )
        assert result2.rows == []

    def test_meet_within(self, qp):
        tight = qp.execute(
            "select meet($a, $b) within 4 from # $a, # $b "
            "where $a contains 'Bit' and $b contains '1999'"
        )
        assert tight.rows == []
        loose = qp.execute(
            "select meet($a, $b) within 5 from # $a, # $b "
            "where $a contains 'Bit' and $b contains '1999'"
        )
        assert loose.rows == [(O["article1"],)]

    def test_distance_aggregate(self, qp):
        result = qp.execute(
            "select distance($a, $b) from # $a, # $b "
            "where $a contains 'Ben' and $b contains 'Bit'"
        )
        assert result.rows == [(4,)]

    def test_distance_requires_single_witnesses(self, qp):
        with pytest.raises(QueryPlanError):
            qp.execute(
                "select distance($a, $b) from # $a, # $b "
                "where $a contains 'Ben' and $b contains '1999'"
            )

    def test_pattern_scopes_meet_inputs(self, qp):
        """Restricting a variable's pattern restricts its witnesses."""
        result = qp.execute(
            "select meet($a, $b) from bibliography/#/title/# $a, # $b "
            "where $a contains '1999' and $b contains 'Bit'"
        )
        # '1999' only as a year — no title witness → no meets
        assert result.rows == []


class TestResultTable:
    def test_render_answer(self, qp, figure1_store):
        result = qp.execute(
            "select meet($a,$b) from # $a, # $b "
            "where $a contains 'Bit' and $b contains '1999'"
        )
        text = result.render_answer(figure1_store)
        assert "<answer>" in text and "article" in text and "</answer>" in text

    def test_column_accessor_unknown(self, qp):
        result = qp.execute("select $o from bibliography $o")
        with pytest.raises(ValueError):
            result.column("$missing")

    def test_len_and_iter(self, qp):
        result = qp.execute("select $o from bibliography/institute/article $o")
        assert len(result) == 2
        assert list(result) == result.rows

    def test_run_query_convenience(self, figure1_store):
        result = run_query(figure1_store, "select $o from bibliography $o")
        assert result.rows == [(O["bibliography"],)]

    def test_explain_via_processor(self, qp):
        text = qp.explain("select $o from bibliography/# $o")
        assert "plan over" in text


class TestToDict:
    def test_round_trip(self, qp):
        result = qp.execute(
            "select $o, tag($o) from bibliography/institute/article $o"
        )
        payload = result.to_dict()
        assert payload["columns"] == ["$o", "tag($o)"]
        assert payload["row_count"] == len(result.rows) == 2
        # Cells keep their types: OIDs are ints, tags are strings.
        assert all(
            isinstance(row[0], int) and isinstance(row[1], str)
            for row in payload["rows"]
        )
        rebuilt = QueryResult.from_dict(payload)
        assert rebuilt.columns == result.columns
        assert rebuilt.rows == result.rows

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ValueError):
            QueryResult.from_dict({"columns": "oops"})
