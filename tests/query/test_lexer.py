"""Unit tests for the query tokenizer."""

import pytest

from repro.datamodel.errors import QuerySyntaxError
from repro.query.lexer import TokenKind, tokenize_query


def kinds(text):
    return [(t.kind, t.value) for t in tokenize_query(text)[:-1]]


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT select SeLeCt") == [
            (TokenKind.KEYWORD, "select")
        ] * 3

    def test_identifier(self):
        assert kinds("bibliography") == [(TokenKind.IDENT, "bibliography")]

    def test_node_variable(self):
        assert kinds("$o1") == [(TokenKind.NODEVAR, "o1")]

    def test_path_variable(self):
        assert kinds("%T2") == [(TokenKind.PATHVAR, "T2")]

    def test_string_literals_both_quotes(self):
        assert kinds("'Bit' \"1999\"") == [
            (TokenKind.STRING, "Bit"),
            (TokenKind.STRING, "1999"),
        ]

    def test_integer(self):
        assert kinds("42") == [(TokenKind.INT, "42")]

    def test_symbols(self):
        assert [k for k, _ in kinds("( ) , / @ # = *")] == [
            TokenKind.SYMBOL
        ] * 8

    def test_full_query_token_stream(self):
        tokens = tokenize_query(
            "select meet($a,$b) from bib/#/%T $a where $a contains 'x'"
        )
        assert tokens[-1].kind == TokenKind.EOF
        values = [t.value for t in tokens[:-1]]
        assert values == [
            "select", "meet", "(", "a", ",", "b", ")", "from", "bib",
            "/", "#", "/", "T", "a", "where", "a", "contains", "x",
        ]

    def test_comments_skipped(self):
        assert kinds("select -- a comment\nfrom") == [
            (TokenKind.KEYWORD, "select"),
            (TokenKind.KEYWORD, "from"),
        ]


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize_query("select 'oops")

    def test_empty_node_variable(self):
        with pytest.raises(QuerySyntaxError):
            tokenize_query("select $ from x $a")

    def test_empty_path_variable(self):
        with pytest.raises(QuerySyntaxError):
            tokenize_query("select % from x $a")

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize_query("select ^")

    def test_error_carries_position(self):
        with pytest.raises(QuerySyntaxError) as info:
            tokenize_query("select ^")
        assert info.value.position == 7
