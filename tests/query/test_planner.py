"""Unit tests for the query planner."""

import pytest

from repro.datamodel.errors import QueryPlanError
from repro.query.parser import parse_query
from repro.query.planner import plan_query


class TestPatternResolution:
    def test_literal_pattern_single_pid(self, figure1_store):
        plan = plan_query(
            parse_query("select $o from bibliography/institute $o"),
            figure1_store,
        )
        assert len(plan.variables["o"].matches) == 1

    def test_wildcard_fanout(self, figure1_store):
        plan = plan_query(
            parse_query("select $o from bibliography/# $o"), figure1_store
        )
        # every element path under the root, root included (zero steps)
        element_paths = len(figure1_store.summary.element_pids())
        assert len(plan.variables["o"].matches) == element_paths

    def test_path_variable_bindings_recorded(self, figure1_store):
        plan = plan_query(
            parse_query("select %T from bibliography/institute/%T $o"),
            figure1_store,
        )
        matches = plan.variables["o"].matches
        assert [b["T"] for _, b in matches] == ["article"]
        assert plan.path_variable_owner == {"T": "o"}

    def test_no_match_is_empty_not_error(self, figure1_store):
        plan = plan_query(
            parse_query("select $o from zebra/# $o"), figure1_store
        )
        assert plan.variables["o"].matches == []


class TestAggregateDetection:
    def test_meet_is_aggregate(self, figure1_store):
        plan = plan_query(
            parse_query("select meet($a,$b) from x $a, y $b"), figure1_store
        )
        assert plan.aggregate

    def test_rowwise_is_not(self, figure1_store):
        plan = plan_query(
            parse_query("select tag($a) from x $a"), figure1_store
        )
        assert not plan.aggregate

    def test_mixed_select_rejected(self, figure1_store):
        with pytest.raises(QueryPlanError):
            plan_query(
                parse_query("select meet($a,$b), tag($a) from x $a, y $b"),
                figure1_store,
            )


class TestExplain:
    def test_explain_mentions_patterns_and_mode(self, figure1_store):
        plan = plan_query(
            parse_query("select meet($a,$b) from bibliography/# $a, # $b"),
            figure1_store,
        )
        text = plan.explain()
        assert "$a := bibliography/#" in text
        assert "aggregate (meet)" in text

    def test_explain_truncates_long_fanouts(self, figure1_store):
        plan = plan_query(
            parse_query("select $o from # $o"), figure1_store
        )
        assert "more" in plan.explain()
