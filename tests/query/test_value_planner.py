"""Access-path planning: choices, estimates, describe() and rebinding."""

import pytest

from repro.query.executor import QueryProcessor
from repro.query.parser import parse_query
from repro.query.planner import (
    ACCESS_FULLTEXT,
    ACCESS_SCAN,
    ACCESS_VALUE_INDEX,
    plan_query,
)
from repro.valueindex import clear_value_index_cache, get_value_index


def condition_plan(plan, index=0):
    return plan.condition_plans[index]


class TestAccessChoice:
    def test_equality_prefers_value_index(self, figure1_store):
        plan = plan_query(
            parse_query("select $a from # $a where $a = 'Bit'"),
            figure1_store,
        )
        chosen = condition_plan(plan)
        assert chosen.access == ACCESS_VALUE_INDEX
        assert chosen.detail == "value-index probe"

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">="])
    def test_range_prefers_value_index(self, figure1_store, op):
        plan = plan_query(
            parse_query(f"select $a from # $a where $a {op} '1999'"),
            figure1_store,
        )
        chosen = condition_plan(plan)
        assert chosen.access == ACCESS_VALUE_INDEX
        assert chosen.detail == f"value-index range ({op})"

    def test_contains_token_uses_fulltext(self, figure1_store):
        plan = plan_query(
            parse_query("select $a from # $a where $a contains 'Bit'"),
            figure1_store,
        )
        assert condition_plan(plan).access == ACCESS_FULLTEXT

    def test_contains_substring_needle_scans(self, figure1_store):
        # "Hack&" is one token but not token-shaped as a whole: the
        # engine substring-scans, and the plan must say so.
        plan = plan_query(
            parse_query("select $a from # $a where $a contains 'Hack&'"),
            figure1_store,
        )
        chosen = condition_plan(plan)
        assert chosen.access == ACCESS_SCAN
        assert "substring" in chosen.detail

    def test_force_scan_pins_every_predicate(self, figure1_store):
        plan = plan_query(
            parse_query(
                "select $a from # $a where $a = 'Bit' and $a >= '1999'"
            ),
            figure1_store,
            force_scan=True,
        )
        assert plan.forced_scan
        for chosen in plan.condition_plans:
            assert chosen.access == ACCESS_SCAN
            assert "forced" in chosen.detail


class TestEstimates:
    def test_warm_index_gives_exact_equality_estimate(self, figure1_store):
        index = get_value_index(figure1_store)
        plan = plan_query(
            parse_query("select $a from # $a where $a = '1999'"),
            figure1_store,
        )
        chosen = condition_plan(plan)
        assert chosen.estimated_rows == len(index.lookup_eq("1999")) == 2
        assert chosen.scan_cost == index.entry_count

    def test_cold_index_estimates_none_and_never_builds(self, figure1_store):
        from repro.valueindex import value_index_cache_info

        clear_value_index_cache()
        plan = plan_query(
            parse_query("select $a from # $a where $a = '1999'"),
            figure1_store,
        )
        assert condition_plan(plan).estimated_rows is None
        # Planning peeks; only execution pays a build.
        assert value_index_cache_info().builds == 0

    def test_unbound_parameter_estimates_none(self, figure1_store):
        plan = plan_query(
            parse_query("select $a from # $a where $a = $v"), figure1_store
        )
        chosen = condition_plan(plan)
        assert chosen.access == ACCESS_VALUE_INDEX
        assert chosen.estimated_rows is None
        assert "$v" in chosen.render()


class TestDescribeAndExplain:
    def test_describe_payload_shape(self, figure1_store):
        plan = plan_query(
            parse_query("select $a from # $a where $a = 'Bit'"),
            figure1_store,
        )
        payload = plan.describe()
        assert payload["mode"] == "enumeration"
        assert payload["forced_scan"] is False
        (variable,) = payload["variables"]
        assert variable["variable"] == "a" and variable["relations"] > 0
        (cond,) = payload["conditions"]
        assert cond["access"] == ACCESS_VALUE_INDEX
        assert cond["predicate"] == "$a = 'Bit'"

    def test_explain_renders_access_paths(self, figure1_store):
        processor = QueryProcessor(figure1_store, None)
        text = "select $a from # $a where $a = 'Bit' and $a contains '1999'"
        explained = processor.explain(text)
        assert "via value-index probe" in explained
        assert "via fulltext token postings" in explained


class TestRebound:
    def test_rebound_shares_schema_and_replans_predicates(self, figure1_store):
        get_value_index(figure1_store)  # warm, so estimates are exact
        template = parse_query("select $a from # $a where $a = $v")
        plan = plan_query(template, figure1_store)
        assert condition_plan(plan).estimated_rows is None
        bound = plan.rebound(template.bind({"v": "Bit"}))
        # Schema half reused as-is; predicate half re-planned.
        assert bound.variables is plan.variables
        assert condition_plan(bound).estimated_rows == 1
        assert "'Bit'" in condition_plan(bound).render()

    def test_rebound_preserves_forced_scan(self, figure1_store):
        template = parse_query("select $a from # $a where $a = $v")
        plan = plan_query(template, figure1_store, force_scan=True)
        bound = plan.rebound(template.bind({"v": "Bit"}))
        assert bound.forced_scan
        assert condition_plan(bound).access == ACCESS_SCAN

    def test_condition_plan_for_matches_bound_copy(self, figure1_store):
        template = parse_query("select $a from # $a where $a = 'Bit'")
        plan = plan_query(template, figure1_store)
        # An equal-but-distinct condition object still resolves.
        twin = parse_query("select $a from # $a where $a = 'Bit'")
        assert plan.condition_plan_for(twin.conditions[0]) is not None
        assert plan.condition_plan_for(
            parse_query("select $a from # $a where $a = 'Zzz'").conditions[0]
        ) is None
