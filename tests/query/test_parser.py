"""Unit tests for the query parser."""

import pytest

from repro.datamodel.errors import QuerySyntaxError
from repro.query.ast import (
    ContainsCondition,
    DistanceItem,
    EqualsCondition,
    MeetItem,
    PathVarItem,
    TagItem,
    VarItem,
)
from repro.query.parser import parse_query


class TestSelectItems:
    def test_select_node_variable(self):
        query = parse_query("select $o from bib $o")
        assert query.select == [VarItem("o")]

    def test_select_tag(self):
        query = parse_query("select tag($o) from bib $o")
        assert query.select == [TagItem("o")]

    def test_select_path_variable(self):
        query = parse_query("select %T from bib/%T $o")
        assert query.select == [PathVarItem("T")]

    def test_select_multiple_items(self):
        query = parse_query("select tag($o), $o, path($o) from bib $o")
        assert len(query.select) == 3

    def test_select_distinct(self):
        assert parse_query("select distinct $o from bib $o").distinct
        assert not parse_query("select $o from bib $o").distinct

    def test_select_meet(self):
        query = parse_query("select meet($a, $b) from x $a, y $b")
        (item,) = query.select
        assert isinstance(item, MeetItem)
        assert item.variables == ("a", "b")
        assert item.within is None and not item.exclude_root

    def test_meet_with_within(self):
        query = parse_query("select meet($a,$b) within 6 from x $a, y $b")
        assert query.select[0].within == 6

    def test_meet_exclude_root(self):
        query = parse_query("select meet($a,$b) exclude root from x $a, y $b")
        assert query.select[0].exclude_root

    def test_meet_exclude_paths(self):
        query = parse_query(
            "select meet($a,$b) exclude bib, bib/inst from x $a, y $b"
        )
        assert query.select[0].exclude_paths == ("bib", "bib/inst")

    def test_meet_needs_two_vars(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select meet($a) from x $a")

    def test_select_distance(self):
        query = parse_query("select distance($a,$b) from x $a, y $b")
        assert query.select == [DistanceItem("a", "b")]


class TestFromClause:
    def test_single_binding(self):
        query = parse_query("select $o from bibliography/institute $o")
        assert str(query.bindings[0].pattern) == "bibliography/institute"
        assert query.bindings[0].variable == "o"

    def test_wildcards_in_pattern(self):
        query = parse_query("select $o from bib/#/%T/*@key $o")
        assert str(query.bindings[0].pattern) == "bib/#/%T/*@key"

    def test_multiple_bindings(self):
        query = parse_query("select $a from x $a, y/z $b")
        assert [b.variable for b in query.bindings] == ["a", "b"]

    def test_keyword_as_tag_name(self):
        # 'text' is a keyword but also a plausible tag name.
        query = parse_query("select $o from bib/text $o")
        assert str(query.bindings[0].pattern) == "bib/text"

    def test_duplicate_binding_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select $a from x $a, y $a")


class TestWhereClause:
    def test_contains(self):
        query = parse_query("select $o from x $o where $o contains 'Bit'")
        assert query.conditions == [ContainsCondition("o", "Bit")]

    def test_equals(self):
        query = parse_query("select $o from x $o where $o = '1999'")
        assert query.conditions == [EqualsCondition("o", "1999")]

    def test_equals_integer_literal(self):
        query = parse_query("select $o from x $o where $o = 1999")
        assert query.conditions == [EqualsCondition("o", "1999")]

    def test_and_chains(self):
        query = parse_query(
            "select $o from x $o where $o contains 'a' and $o contains 'b'"
        )
        assert len(query.conditions) == 2

    def test_conditions_for(self):
        query = parse_query(
            "select $a from x $a, y $b where $a contains 'p' and $b contains 'q'"
        )
        assert query.conditions_for("a") == [ContainsCondition("a", "p")]


class TestReferenceChecking:
    def test_unbound_select_variable(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select $nope from x $a")

    def test_unbound_condition_variable(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select $a from x $a where $b contains 'x'")

    def test_unbound_path_variable(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select %T from x $a")

    def test_unbound_meet_variable(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select meet($a,$b) from x $a")


class TestSyntaxErrors:
    def test_missing_from(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select $a")

    def test_trailing_garbage(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select $a from x $a extra")

    def test_bad_condition(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select $a from x $a where $a near 'x'")

    def test_within_requires_integer(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select meet($a,$b) within 'x' from p $a, q $b")

    def test_paper_query_parses(self):
        """The §3.2 query, verbatim modulo concrete syntax."""
        query = parse_query(
            """
            select meet($o1, $o2)
            from   bibliography/#/%T1 $o1,
                   bibliography/#/%T2 $o2
            where  $o1 contains 'Bit'
            and    $o2 contains '1999'
            """
        )
        assert isinstance(query.select[0], MeetItem)
        assert len(query.bindings) == 2
        assert len(query.conditions) == 2
