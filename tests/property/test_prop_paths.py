"""Property tests: the prefix order and path algebra (Defs. 3/5)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel.paths import (
    Path,
    is_prefix,
    longest_common_prefix,
    prefix_leq,
    relative_suffix,
)

labels = st.sampled_from(("a", "b", "c", "x"))
paths = st.lists(labels, min_size=0, max_size=6).map(lambda ls: Path.of(*ls))


@settings(max_examples=100)
@given(paths)
def test_prefix_leq_reflexive(path):
    assert prefix_leq(path, path)


@settings(max_examples=100)
@given(paths, paths)
def test_prefix_leq_antisymmetric(path1, path2):
    if prefix_leq(path1, path2) and prefix_leq(path2, path1):
        assert path1 == path2


@settings(max_examples=100)
@given(paths, paths, paths)
def test_prefix_leq_transitive(path1, path2, path3):
    if prefix_leq(path1, path2) and prefix_leq(path2, path3):
        assert prefix_leq(path1, path3)


@settings(max_examples=100)
@given(paths, paths)
def test_lcp_is_prefix_of_both(path1, path2):
    lcp = longest_common_prefix(path1, path2)
    assert is_prefix(lcp, path1)
    assert is_prefix(lcp, path2)


@settings(max_examples=100)
@given(paths, paths)
def test_lcp_is_longest(path1, path2):
    """No strictly longer common prefix exists."""
    lcp = longest_common_prefix(path1, path2)
    n = len(lcp)
    if len(path1) > n and len(path2) > n:
        assert path1[: n + 1] != path2[: n + 1]


@settings(max_examples=100)
@given(paths, paths)
def test_lcp_commutative(path1, path2):
    assert longest_common_prefix(path1, path2) == longest_common_prefix(
        path2, path1
    )


@settings(max_examples=100)
@given(paths)
def test_lcp_idempotent(path):
    assert longest_common_prefix(path, path) == path


@settings(max_examples=100)
@given(paths, paths)
def test_suffix_recomposition(path1, path2):
    """prefix + (path − prefix) == path."""
    lcp = longest_common_prefix(path1, path2)
    suffix = relative_suffix(path1, lcp)
    assert Path(tuple(lcp.steps) + tuple(suffix.steps)) == path1


@settings(max_examples=100)
@given(paths)
def test_parse_str_roundtrip(path):
    assert Path.parse(str(path)) == path


@settings(max_examples=100)
@given(paths, paths)
def test_hash_consistency(path1, path2):
    if path1 == path2:
        assert hash(path1) == hash(path2)
