"""Property tests: storage round-trip on generated stores."""

from hypothesis import given, settings

from repro.monet.storage import dumps, loads

from .strategies import stores


@settings(max_examples=40, deadline=None)
@given(stores(max_nodes=25))
def test_dumps_loads_preserves_columns(store):
    clone = loads(dumps(store))
    assert clone.node_count == store.node_count
    assert clone.root_oid == store.root_oid
    for oid in store.iter_oids():
        assert clone.pid_of(oid) == clone.summary.pid(store.path_of(oid))
        assert clone.parent_of(oid) == store.parent_of(oid)
        assert clone.rank_of(oid) == store.rank_of(oid)
        assert clone.attributes_of(oid) == store.attributes_of(oid)


@settings(max_examples=30, deadline=None)
@given(stores(max_nodes=25))
def test_reloaded_store_validates(store):
    loads(dumps(store)).validate()


@settings(max_examples=30, deadline=None)
@given(stores(max_nodes=20))
def test_meet_stable_across_reload(store):
    from repro.core.meet_pair import meet2

    clone = loads(dumps(store))
    oids = list(store.iter_oids())
    samples = oids[:: max(1, len(oids) // 5)]
    for oid1 in samples:
        for oid2 in samples:
            assert meet2(clone, oid1, oid2) == meet2(store, oid1, oid2)


@settings(max_examples=30, deadline=None)
@given(stores(max_nodes=20))
def test_dumps_is_deterministic(store):
    assert dumps(store) == dumps(store)
