"""Property tests: serialize ∘ parse round-trips on generated documents."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel.parser import parse_document
from repro.datamodel.serializer import escape_attribute, escape_text, serialize

from .strategies import tree_documents


def structure(document):
    return [
        (
            document.node(oid).label,
            tuple(sorted(document.node(oid).attributes.items())),
            document.parent_oid(oid),
        )
        for oid in document.iter_oids()
    ]


@settings(max_examples=60, deadline=None)
@given(tree_documents(max_nodes=25))
def test_serialize_parse_preserves_structure(document):
    reparsed = parse_document(serialize(document))
    assert structure(reparsed) == structure(document)


@settings(max_examples=40, deadline=None)
@given(tree_documents(max_nodes=25))
def test_serialize_is_fixpoint(document):
    once = serialize(document)
    assert serialize(parse_document(once)) == once


@settings(max_examples=40, deadline=None)
@given(tree_documents(max_nodes=20))
def test_pretty_printing_preserves_structure(document):
    reparsed = parse_document(serialize(document, indent=2))
    assert structure(reparsed) == structure(document)


text_values = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_categories=("Cs", "Cc")
    ),
    min_size=0,
    max_size=40,
)


@settings(max_examples=100)
@given(text_values)
def test_text_escaping_roundtrip(value):
    document = parse_document(f"<t>{escape_text(value)}</t>", keep_whitespace=True)
    children = document.root.children
    reread = children[0].string_value if children else ""
    assert reread == value


@settings(max_examples=100)
@given(text_values)
def test_attribute_escaping_roundtrip(value):
    document = parse_document(f'<t k="{escape_attribute(value)}"/>')
    assert document.root.attributes["k"] == value
