"""Property tests: meet₂ against independent oracles and metric laws."""

from hypothesis import given, settings

from repro.baselines.euler_rmq import EulerTourLCA
from repro.baselines.naive_lca import lockstep_lca, naive_lca
from repro.core.meet_pair import meet2, meet2_traced
from repro.core.restrictions import bounded_meet2

from .strategies import stores_with_oid_pairs


@settings(max_examples=60, deadline=None)
@given(stores_with_oid_pairs())
def test_meet2_matches_naive_oracle(store_and_pairs):
    store, pairs = store_and_pairs
    for oid1, oid2 in pairs:
        assert meet2(store, oid1, oid2) == naive_lca(store, oid1, oid2)


@settings(max_examples=40, deadline=None)
@given(stores_with_oid_pairs())
def test_meet2_matches_lockstep_and_euler(store_and_pairs):
    store, pairs = store_and_pairs
    euler = EulerTourLCA(store)
    for oid1, oid2 in pairs:
        expected = meet2(store, oid1, oid2)
        assert lockstep_lca(store, oid1, oid2) == expected
        assert euler.lca(oid1, oid2) == expected


@settings(max_examples=60, deadline=None)
@given(stores_with_oid_pairs())
def test_meet2_is_commutative(store_and_pairs):
    store, pairs = store_and_pairs
    for oid1, oid2 in pairs:
        left = meet2_traced(store, oid1, oid2)
        right = meet2_traced(store, oid2, oid1)
        assert left.oid == right.oid
        assert left.joins == right.joins


@settings(max_examples=60, deadline=None)
@given(stores_with_oid_pairs())
def test_join_count_is_depth_formula(store_and_pairs):
    """joins = depth(o₁) + depth(o₂) − 2·depth(meet): the walk never
    visits a node outside the o₁–o₂ path (the steering claim)."""
    store, pairs = store_and_pairs
    for oid1, oid2 in pairs:
        result = meet2_traced(store, oid1, oid2)
        assert result.joins == (
            store.depth_of(oid1)
            + store.depth_of(oid2)
            - 2 * store.depth_of(result.oid)
        )


@settings(max_examples=60, deadline=None)
@given(stores_with_oid_pairs())
def test_meet_is_common_ancestor_and_minimal(store_and_pairs):
    store, pairs = store_and_pairs
    for oid1, oid2 in pairs:
        meet = meet2(store, oid1, oid2)
        assert store.is_ancestor(meet, oid1)
        assert store.is_ancestor(meet, oid2)
        for child in store.children_of(meet):
            assert not (
                store.is_ancestor(child, oid1) and store.is_ancestor(child, oid2)
            )


@settings(max_examples=60, deadline=None)
@given(stores_with_oid_pairs())
def test_bounded_meet_consistent_with_unbounded(store_and_pairs):
    store, pairs = store_and_pairs
    for oid1, oid2 in pairs:
        exact = meet2_traced(store, oid1, oid2)
        for bound in (exact.joins - 1, exact.joins, exact.joins + 1):
            result = bounded_meet2(store, oid1, oid2, bound)
            if bound >= exact.joins:
                assert result is not None and result.oid == exact.oid
            else:
                assert result is None


@settings(max_examples=40, deadline=None)
@given(stores_with_oid_pairs())
def test_distance_metric_laws(store_and_pairs):
    """Identity, symmetry and the triangle inequality on samples."""
    from repro.core.distance import distance

    store, pairs = store_and_pairs
    oids = [oid for pair in pairs for oid in pair]
    for oid in oids:
        assert distance(store, oid, oid) == 0
    for oid1, oid2 in pairs:
        assert distance(store, oid1, oid2) == distance(store, oid2, oid1)
    if len(oids) >= 3:
        a, b, c = oids[0], oids[1], oids[2]
        assert distance(store, a, c) <= distance(store, a, b) + distance(
            store, b, c
        )
