"""Property tests: graph meet is a conservative extension of meet₂."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph_meet import (
    ReferenceIndex,
    graph_distance,
    graph_meet,
    graph_shortest_path,
)
from repro.core.meet_pair import meet2_traced

from .strategies import stores_with_oid_pairs


@settings(max_examples=50, deadline=None)
@given(stores_with_oid_pairs())
def test_tree_graph_meet_equals_meet2(store_and_pairs):
    """Without references the graph meet is exactly the LCA walk."""
    store, pairs = store_and_pairs
    for oid1, oid2 in pairs:
        tree = meet2_traced(store, oid1, oid2)
        graph = graph_meet(store, oid1, oid2)
        assert graph is not None
        assert graph.oid == tree.oid
        assert graph.distance == tree.joins
        assert graph.via_references == 0


@settings(max_examples=50, deadline=None)
@given(stores_with_oid_pairs())
def test_path_is_a_valid_walk(store_and_pairs):
    store, pairs = store_and_pairs
    for oid1, oid2 in pairs:
        path = graph_shortest_path(store, oid1, oid2)
        assert path is not None
        assert path[0] == oid1 and path[-1] == oid2
        for left, right in zip(path, path[1:]):
            assert store.parent_of(left) == right or (
                store.parent_of(right) == left
            )


@settings(max_examples=50, deadline=None)
@given(stores_with_oid_pairs())
def test_references_never_lengthen_paths(store_and_pairs):
    """Adding reference edges can only shorten or preserve distances."""
    store, pairs = store_and_pairs
    refs = ReferenceIndex(store)  # generated stores carry 'id' attrs rarely
    for oid1, oid2 in pairs:
        plain = graph_distance(store, oid1, oid2)
        augmented = graph_distance(store, oid1, oid2, refs)
        assert plain is not None and augmented is not None
        assert augmented <= plain


@settings(max_examples=50, deadline=None)
@given(stores_with_oid_pairs(), st.integers(min_value=0, max_value=6))
def test_max_distance_consistent(store_and_pairs, bound):
    """The bounded search answers iff the true distance fits."""
    store, pairs = store_and_pairs
    for oid1, oid2 in pairs:
        true_distance = graph_distance(store, oid1, oid2)
        assert true_distance is not None
        bounded = graph_distance(store, oid1, oid2, max_distance=bound)
        if true_distance <= bound:
            assert bounded == true_distance
        else:
            assert bounded is None


@settings(max_examples=50, deadline=None)
@given(stores_with_oid_pairs())
def test_graph_distance_symmetric(store_and_pairs):
    store, pairs = store_and_pairs
    for oid1, oid2 in pairs:
        assert graph_distance(store, oid1, oid2) == graph_distance(
            store, oid2, oid1
        )
