"""Property tests: the general meet (Fig. 5) and its invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive_lca import naive_lca
from repro.core.meet_general import (
    group_by_pid,
    meet_depthwise,
    meet_general,
)

from .strategies import stores_with_oid_sets


def as_result_set(meets):
    return {(meet.oid, meet.origins) for meet in meets}


@settings(max_examples=60, deadline=None)
@given(stores_with_oid_sets())
def test_schema_and_depthwise_agree(store_and_oids):
    store, oids = store_and_oids
    relations = group_by_pid(store, oids)
    assert as_result_set(meet_general(store, relations)) == as_result_set(
        meet_depthwise(store, relations)
    )


@settings(max_examples=60, deadline=None)
@given(stores_with_oid_sets())
def test_meets_cover_at_least_two_distinct_inputs(store_and_oids):
    store, oids = store_and_oids
    for meet in meet_general(store, group_by_pid(store, oids)):
        assert len(meet.origins) >= 2
        assert meet.origins <= set(oids)


@settings(max_examples=60, deadline=None)
@given(stores_with_oid_sets())
def test_meet_is_lca_of_its_origin_set(store_and_oids):
    """Every emitted meet is exactly the LCA of its origin group."""
    store, oids = store_and_oids
    for meet in meet_general(store, group_by_pid(store, oids)):
        origins = sorted(meet.origins)
        lca = origins[0]
        for other in origins[1:]:
            lca = naive_lca(store, lca, other)
        assert lca == meet.oid


@settings(max_examples=60, deadline=None)
@given(stores_with_oid_sets(), st.randoms(use_true_random=False))
def test_input_order_invariance(store_and_oids, rng):
    store, oids = store_and_oids
    base = as_result_set(meet_general(store, group_by_pid(store, oids)))
    shuffled = list(oids)
    rng.shuffle(shuffled)
    again = as_result_set(meet_general(store, group_by_pid(store, shuffled)))
    assert base == again


@settings(max_examples=60, deadline=None)
@given(stores_with_oid_sets())
def test_origin_groups_are_disjoint(store_and_oids):
    """Each input retires with its meet: no origin appears twice —
    the anti-explosion bookkeeping of Fig. 5."""
    store, oids = store_and_oids
    seen = set()
    for meet in meet_general(store, group_by_pid(store, oids)):
        assert not (meet.origins & seen)
        seen |= meet.origins


@settings(max_examples=60, deadline=None)
@given(stores_with_oid_sets())
def test_output_bounded_by_half_input(store_and_oids):
    """≥2 distinct inputs retire per meet ⇒ |meets| ≤ |inputs| / 2."""
    store, oids = store_and_oids
    distinct = set(oids)
    meets = meet_general(store, group_by_pid(store, distinct))
    assert len(meets) <= len(distinct) // 2


@settings(max_examples=40, deadline=None)
@given(stores_with_oid_sets())
def test_pairwise_meet_of_origins_never_deeper(store_and_oids):
    """Minimality: no two covered origins meet strictly below the
    emitted meet (otherwise the roll-up missed a lower meet)."""
    store, oids = store_and_oids
    for meet in meet_general(store, group_by_pid(store, oids)):
        depth = store.depth_of(meet.oid)
        origins = sorted(meet.origins)
        for index, left in enumerate(origins):
            for right in origins[index + 1 :]:
                pair_meet = naive_lca(store, left, right)
                assert store.depth_of(pair_meet) <= depth
