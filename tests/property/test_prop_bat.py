"""Property tests: algebraic laws of the BAT primitives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monet.bat import BAT

values = st.integers(min_value=0, max_value=9)
buns = st.tuples(values, values)
bats = st.lists(buns, min_size=0, max_size=12).map(BAT)


@settings(max_examples=100)
@given(bats)
def test_reverse_involution(bat):
    assert bat.reverse().reverse() == bat


@settings(max_examples=100)
@given(bats)
def test_mirror_heads(bat):
    mirrored = bat.mirror()
    assert list(mirrored.heads) == list(mirrored.tails) == list(bat.heads)


@settings(max_examples=100)
@given(bats, bats)
def test_semijoin_is_subset_of_self(left, right):
    result = left.semijoin(right)
    assert set(result.to_list()) <= set(left.to_list())
    assert result.head_set() <= right.head_set() | set()


@settings(max_examples=100)
@given(bats, bats)
def test_semijoin_antijoin_partition(left, right):
    inside = left.semijoin(right)
    outside = left.antijoin_heads(right)
    assert inside.count() + outside.count() == left.count()
    assert not (inside.head_set() & outside.head_set())


@settings(max_examples=100)
@given(bats, bats)
def test_kdiff_removes_exactly_shared_heads(left, right):
    result = left.kdiff(right)
    assert result.head_set() == left.head_set() - right.head_set()


@settings(max_examples=100)
@given(bats, bats)
def test_kunion_head_coverage(left, right):
    result = left.kunion(right)
    assert result.head_set() == left.head_set() | right.head_set()


@settings(max_examples=100)
@given(bats, bats)
def test_kintersect_heads(left, right):
    result = left.kintersect(right)
    assert result.head_set() == left.head_set() & right.head_set()


@settings(max_examples=100)
@given(bats)
def test_kunique_one_bun_per_head(bat):
    unique = bat.kunique()
    heads = list(unique.heads)
    assert len(heads) == len(set(heads))
    assert unique.head_set() == bat.head_set()


@settings(max_examples=100)
@given(bats, bats)
def test_join_count_matches_index_product(left, right):
    """|A ⋈ B| = Σ over shared values of multiplicity products."""
    joined = left.join(right)
    expected = 0
    right_histogram = right.histogram()
    for tail in left.tails:
        expected += right_histogram.get(tail, 0)
    assert joined.count() == expected


@settings(max_examples=100)
@given(bats)
def test_join_with_mirror_is_identity_on_buns(bat):
    """A ⋈ mirror(tails of A) reproduces A's BUNs."""
    identity = BAT([(tail, tail) for tail in set(bat.tails)])
    assert bat.join(identity) == bat


@settings(max_examples=100)
@given(bats)
def test_mark_is_dense(bat):
    marked = bat.mark(5)
    assert list(marked.tails) == list(range(5, 5 + len(bat)))


@settings(max_examples=100)
@given(bats, bats)
def test_union_all_count(left, right):
    assert left.union_all(right).count() == left.count() + right.count()
