"""Property tests: the Euler-RMQ index against every independent
oracle, on random trees.

Invariants:

* indexed LCA == naive ancestor-set LCA == the steered ``meet₂`` walk;
* the index's depth-based d(o₁,o₂) == the ``joins`` count reported by
  the traced Fig. 3 walk (the paper's distance = join-count identity);
* the auxiliary-tree roll-up of :class:`IndexedBackend` emits exactly
  the meets of the schema-driven Fig. 5 roll-up;
* the generation-keyed cache returns one index per store until the
  store is invalidated.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive_lca import naive_lca
from repro.core.backends import IndexedBackend, SteeredBackend
from repro.core.lca_index import (
    LcaIndex,
    clear_lca_index_cache,
    get_lca_index,
    lca_index_cache_info,
)
from repro.core.meet_pair import meet2, meet2_traced

from .strategies import stores, stores_with_oid_pairs, stores_with_oid_sets


@settings(max_examples=60, deadline=None)
@given(stores_with_oid_pairs())
def test_indexed_lca_matches_naive_and_steered(store_and_pairs):
    store, pairs = store_and_pairs
    index = LcaIndex(store)
    for oid1, oid2 in pairs:
        expected = meet2(store, oid1, oid2)
        assert index.lca(oid1, oid2) == expected
        assert naive_lca(store, oid1, oid2) == expected


@settings(max_examples=60, deadline=None)
@given(stores_with_oid_pairs())
def test_indexed_distance_equals_traced_joins(store_and_pairs):
    store, pairs = store_and_pairs
    index = LcaIndex(store)
    for oid1, oid2 in pairs:
        traced = meet2_traced(store, oid1, oid2)
        meet, dist = index.lca_with_distance(oid1, oid2)
        assert meet == traced.oid
        assert dist == traced.joins
        assert index.distance(oid1, oid2) == traced.joins


@settings(max_examples=40, deadline=None)
@given(stores_with_oid_pairs())
def test_is_ancestor_agrees_with_parent_walk(store_and_pairs):
    store, pairs = store_and_pairs
    index = LcaIndex(store)
    for oid1, oid2 in pairs:
        assert index.is_ancestor(oid1, oid2) == store.is_ancestor(oid1, oid2)
        assert index.is_ancestor(oid2, oid1) == store.is_ancestor(oid2, oid1)


@settings(max_examples=50, deadline=None)
@given(stores_with_oid_sets(), st.randoms(use_true_random=False))
def test_auxiliary_roll_up_matches_schema_roll_up(store_and_oids, rng):
    store, oids = store_and_oids
    tagged = [(rng.choice("abc"), oid) for oid in oids]
    steered = SteeredBackend(store).meet_tagged(tagged)
    indexed = IndexedBackend(store).meet_tagged(tagged)
    assert set(indexed) == set(steered)


@settings(max_examples=20, deadline=None)
@given(stores())
def test_cache_one_build_per_generation(store):
    clear_lca_index_cache()
    try:
        first = get_lca_index(store)
        again = get_lca_index(store)
        assert again is first
        info = lca_index_cache_info()
        assert info.builds == 1 and info.hits == 1
        store.invalidate_caches()
        rebuilt = get_lca_index(store)
        assert rebuilt is not first
        assert lca_index_cache_info().builds == 2
    finally:
        clear_lca_index_cache()
