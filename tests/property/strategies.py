"""Hypothesis strategies shared by the property tests.

Documents are generated from a parent-index vector: node i (i ≥ 1)
attaches to a previously created node, which guarantees a valid rooted
tree and gives hypothesis real shrinking power (dropping suffix nodes
yields smaller valid trees).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from hypothesis import strategies as st

from repro.datamodel.document import Document
from repro.datamodel.node import Node
from repro.monet.transform import monet_transform

LABELS = ("a", "b", "c", "d")
WORDS = ("alpha", "beta", "gamma", "delta", "epsilon", "1999", "icde")


@st.composite
def tree_documents(draw, max_nodes: int = 30, with_text: bool = True):
    """A frozen Document with 1..max_nodes element nodes."""
    size = draw(st.integers(min_value=1, max_value=max_nodes))
    parents = [
        draw(st.integers(min_value=0, max_value=index - 1))
        for index in range(1, size)
    ]
    labels = [draw(st.sampled_from(LABELS)) for _ in range(size)]
    texts: List[Optional[str]] = [None] * size
    if with_text:
        for index in range(size):
            if draw(st.booleans()):
                texts[index] = " ".join(
                    draw(
                        st.lists(
                            st.sampled_from(WORDS), min_size=1, max_size=3
                        )
                    )
                )
    nodes = [Node("root")]
    for index in range(1, size):
        node = Node(labels[index])
        nodes[parents[index - 1]].append(node)
        nodes.append(node)
    for node, text in zip(nodes, texts):
        if text is not None:
            node.text = text
    return Document(nodes[0])


@st.composite
def stores(draw, max_nodes: int = 30, with_text: bool = True):
    """A MonetXML store over a generated document."""
    return monet_transform(draw(tree_documents(max_nodes, with_text)))


@st.composite
def stores_with_oid_pairs(draw, max_nodes: int = 30, max_pairs: int = 5):
    """(store, [(oid1, oid2), …]) with OIDs guaranteed in range."""
    store = draw(stores(max_nodes))
    pairs: List[Tuple[int, int]] = [
        (
            draw(st.integers(store.first_oid, store.last_oid)),
            draw(st.integers(store.first_oid, store.last_oid)),
        )
        for _ in range(draw(st.integers(1, max_pairs)))
    ]
    return store, pairs


@st.composite
def stores_with_oid_sets(draw, max_nodes: int = 30, max_set: int = 6):
    """(store, oid_set) for the n-ary meet properties."""
    store = draw(stores(max_nodes))
    oids = draw(
        st.lists(
            st.integers(store.first_oid, store.last_oid),
            min_size=0,
            max_size=max_set,
        )
    )
    return store, oids
