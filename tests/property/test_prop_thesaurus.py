"""Property tests: broadening only ever adds hits, never loses them."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fulltext.search import SearchEngine
from repro.fulltext.thesaurus import BroadeningSearch, Thesaurus, expand_term

from .strategies import WORDS, stores

terms = st.sampled_from(WORDS + ("missing", "ghost"))
rings = st.lists(
    st.lists(st.sampled_from(WORDS), min_size=2, max_size=3, unique=True),
    min_size=0,
    max_size=3,
)


@settings(max_examples=50, deadline=None)
@given(stores(max_nodes=25), terms, rings)
def test_broadened_hits_superset_of_plain(store, term, ring_list):
    search = SearchEngine(store)
    thesaurus = Thesaurus.from_rings(ring_list)
    broadening = BroadeningSearch(search, thesaurus, min_hits=10**9)
    plain_oids = search.find(term).oids()
    broadened, used = broadening.find(term)
    assert plain_oids <= broadened.oids()
    assert used[0] == term


@settings(max_examples=50, deadline=None)
@given(stores(max_nodes=25), terms, rings)
def test_no_broadening_when_satisfied(store, term, ring_list):
    """min_hits=0 ⇒ the plain result is always good enough."""
    search = SearchEngine(store)
    thesaurus = Thesaurus.from_rings(ring_list)
    broadening = BroadeningSearch(search, thesaurus, min_hits=0)
    broadened, used = broadening.find(term)
    assert broadened.oids() == search.find(term).oids()
    assert used == [term]


@settings(max_examples=100)
@given(rings, terms)
def test_expansion_contains_term_first(ring_list, term):
    thesaurus = Thesaurus.from_rings(ring_list)
    expansion = expand_term(thesaurus, term, transitive=True)
    assert expansion[0] == term
    assert len(expansion) == len(set(expansion))


@settings(max_examples=100)
@given(rings)
def test_synonymy_is_symmetric(ring_list):
    thesaurus = Thesaurus.from_rings(ring_list)
    for ring in ring_list:
        for left in ring:
            for right in ring:
                if left.lower() == right.lower():
                    continue
                assert (right.lower() in thesaurus.synonyms(left)) == (
                    left.lower() in thesaurus.synonyms(right)
                )
