"""Property tests: meet_S (Fig. 4) on homogeneous sets."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.meet_pair import meet2
from repro.core.meet_sets import meet_sets

from .strategies import stores


@st.composite
def stores_with_homogeneous_sets(draw):
    """(store, left, right): two sets each drawn from a single path."""
    store = draw(stores(max_nodes=40))
    by_pid = {}
    for oid in store.iter_oids():
        by_pid.setdefault(store.pid_of(oid), []).append(oid)
    pids = sorted(by_pid)
    pid_left = draw(st.sampled_from(pids))
    pid_right = draw(st.sampled_from(pids))
    left = draw(
        st.lists(st.sampled_from(by_pid[pid_left]), min_size=1, max_size=5)
    )
    right = draw(
        st.lists(st.sampled_from(by_pid[pid_right]), min_size=1, max_size=5)
    )
    return store, left, right


@settings(max_examples=60, deadline=None)
@given(stores_with_homogeneous_sets())
def test_emitted_meets_are_true_pairwise_lcas(data):
    store, left, right = data
    for meet in meet_sets(store, left, right):
        for l_origin in meet.left_origins:
            for r_origin in meet.right_origins:
                assert meet2(store, l_origin, r_origin) == meet.oid


@settings(max_examples=60, deadline=None)
@given(stores_with_homogeneous_sets())
def test_origins_drawn_from_inputs(data):
    store, left, right = data
    for meet in meet_sets(store, left, right):
        assert set(meet.left_origins) <= set(left)
        assert set(meet.right_origins) <= set(right)
        assert meet.left_origins and meet.right_origins


@settings(max_examples=60, deadline=None)
@given(stores_with_homogeneous_sets())
def test_no_side_retires_twice(data):
    """Minimality bookkeeping: each input participates in ≤ 1 meet."""
    store, left, right = data
    seen_left, seen_right = set(), set()
    for meet in meet_sets(store, left, right):
        assert not (set(meet.left_origins) & seen_left)
        assert not (set(meet.right_origins) & seen_right)
        seen_left |= set(meet.left_origins)
        seen_right |= set(meet.right_origins)


@settings(max_examples=60, deadline=None)
@given(stores_with_homogeneous_sets(), st.randoms(use_true_random=False))
def test_input_order_invariance(data, rng):
    store, left, right = data
    base = {(m.oid, m.left_origins, m.right_origins) for m in meet_sets(store, left, right)}
    left_shuffled, right_shuffled = list(left), list(right)
    rng.shuffle(left_shuffled)
    rng.shuffle(right_shuffled)
    again = {
        (m.oid, m.left_origins, m.right_origins)
        for m in meet_sets(store, left_shuffled, right_shuffled)
    }
    assert base == again


@settings(max_examples=60, deadline=None)
@given(stores_with_homogeneous_sets())
def test_output_bounded_by_smaller_input(data):
    store, left, right = data
    meets = meet_sets(store, left, right)
    assert len(meets) <= min(len(set(left)), len(set(right)))


@settings(max_examples=40, deadline=None)
@given(stores_with_homogeneous_sets())
def test_singletons_agree_with_meet2(data):
    store, left, right = data
    assume(len(set(left)) == 1 and len(set(right)) == 1)
    (l_oid,), (r_oid,) = set(left), set(right)
    meets = meet_sets(store, [l_oid], [r_oid])
    assert len(meets) == 1
    assert meets[0].oid == meet2(store, l_oid, r_oid)
