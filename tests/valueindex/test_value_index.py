"""The typed value index: probes reproduce scan semantics exactly.

Every probe (equality, comparison, range) is checked against a brute
force over ``store.string_relations()`` evaluated with the very
``compare_values`` rule the ``=``/range predicates scan with — the
index is only allowed to change cost, never answers.
"""

from types import SimpleNamespace

import pytest

from repro.monet.transform import monet_transform
from repro.datasets import PlaysConfig, plays_document
from repro.query.ast import compare_values
from repro.valueindex import (
    ValueIndex,
    cached_value_index,
    clear_value_index_cache,
    get_value_index,
    seed_value_index,
    value_index_cache_info,
)


@pytest.fixture()
def plays_store():
    return monet_transform(
        plays_document(PlaysConfig(plays=2, acts_per_play=2, scenes_per_act=2))
    )


def scan_associations(store):
    """(pid, oid, value) for every string association — the oracle."""
    for pid, relation in store.string_relations():
        for oid, value in relation:
            yield pid, oid, value


class TestProbesMatchScan:
    def test_build_covers_every_association(self, figure1_store):
        index = ValueIndex(figure1_store)
        assert index.entry_count == sum(
            1 for _ in scan_associations(figure1_store)
        )
        assert index.path_count == len(
            {pid for pid, _oid, _v in scan_associations(figure1_store)}
        )

    def test_equality_probe_equals_scan_for_every_value(self, figure1_store):
        index = ValueIndex(figure1_store)
        values = {v for _p, _o, v in scan_associations(figure1_store)}
        for value in values | {"no-such-value"}:
            expected = {
                oid
                for _pid, oid, v in scan_associations(figure1_store)
                if v == value
            }
            assert index.lookup_eq(value) == expected, value
            assert index.estimate_eq(value) == len(expected), value

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">="])
    @pytest.mark.parametrize("literal", ["1999", "Bit", "Bob Byte", "0"])
    def test_comparison_probe_equals_scan(self, figure1_store, op, literal):
        index = ValueIndex(figure1_store)
        expected = {
            oid
            for _pid, oid, value in scan_associations(figure1_store)
            if compare_values(value, op, literal)
        }
        actual = index.lookup_cmp(op, literal)
        assert actual == expected, (op, literal)
        # The entry-count estimate is an upper bound on distinct OIDs.
        assert index.estimate_cmp(op, literal) >= len(actual)

    def test_comparison_probe_on_larger_store(self, plays_store):
        index = ValueIndex(plays_store)
        for op in ("<", ">="):
            for literal in ("crown", "5"):
                expected = {
                    oid
                    for _pid, oid, value in scan_associations(plays_store)
                    if compare_values(value, op, literal)
                }
                assert index.lookup_cmp(op, literal) == expected, (op, literal)

    def test_pid_restricted_probe(self, figure1_store):
        index = ValueIndex(figure1_store)
        (pid,) = {
            pid
            for pid, _oid, value in scan_associations(figure1_store)
            if value == "Bit"
        }
        assert index.lookup_eq("Bit", pids=[pid]) == index.lookup_eq("Bit")
        assert index.lookup_eq("Bit", pids=[pid + 999]) == frozenset()

    def test_string_and_numeric_range(self, figure1_store):
        index = ValueIndex(figure1_store)
        lexical = index.lookup_range("A", "C")
        expected = {
            oid
            for _pid, oid, value in scan_associations(figure1_store)
            if "A" <= value <= "C"
        }
        assert lexical == expected
        numeric = index.lookup_range("1998", "2000", numeric=True)
        expected_numeric = set()
        for _pid, oid, value in scan_associations(figure1_store):
            try:
                if 1998.0 <= float(value) <= 2000.0:
                    expected_numeric.add(oid)
            except ValueError:
                pass
        assert numeric == expected_numeric
        with pytest.raises(ValueError):
            index.lookup_range("low", None, numeric=True)

    def test_unknown_operator_rejected(self, figure1_store):
        index = ValueIndex(figure1_store)
        with pytest.raises(ValueError):
            index.lookup_cmp("!=", "x")
        with pytest.raises(ValueError):
            index.estimate_cmp("~", "x")


class TestPersistenceColumns:
    def test_round_trip_through_path_columns(self, figure1_store):
        built = ValueIndex(figure1_store)
        columns = [
            (pid, list(oids), list(values))
            for pid, oids, values in built.iter_path_columns()
        ]
        clear_value_index_cache()
        restored = ValueIndex.from_path_columns(
            figure1_store, columns, declared=["#"]
        )
        # from_path_columns never scans a relation: no build counted.
        assert value_index_cache_info().builds == 0
        assert restored.declared == ("#",)
        assert restored.entry_count == built.entry_count
        for value in {v for _p, _o, v in scan_associations(figure1_store)}:
            assert restored.lookup_eq(value) == built.lookup_eq(value)
        assert restored.lookup_cmp(">=", "1999") == built.lookup_cmp(
            ">=", "1999"
        )


class TestPatchedMaintenance:
    def _record_put(self, added, to_generation):
        return SimpleNamespace(
            kind="put", added_strings=added, to_generation=to_generation
        )

    def _record_delete(self, span, to_generation):
        return SimpleNamespace(
            kind="delete", span=span, to_generation=to_generation
        )

    def test_put_adds_and_delete_prunes(self, figure1_store):
        index = ValueIndex(figure1_store)
        pid = next(iter(p for p, _o, _v in scan_associations(figure1_store)))
        patched = index.patched(
            [self._record_put([(pid, 900, "Patchwork")], index.generation + 1)]
        )
        assert patched.lookup_eq("Patchwork") == {900}
        assert index.lookup_eq("Patchwork") == frozenset()  # copy-on-write
        assert patched.generation == index.generation + 1
        assert patched.entry_count == index.entry_count + 1

        pruned = patched.patched(
            [self._record_delete((900, 900), patched.generation + 1)]
        )
        assert pruned.lookup_eq("Patchwork") == frozenset()
        assert pruned.entry_count == index.entry_count

    def test_delete_spanning_existing_oids(self, figure1_store):
        index = ValueIndex(figure1_store)
        victims = {
            oid
            for _pid, oid, value in scan_associations(figure1_store)
            if value == "Bit"
        }
        low = high = next(iter(victims))
        pruned = index.patched(
            [self._record_delete((low, high), index.generation + 1)]
        )
        assert pruned.lookup_eq("Bit") == frozenset()


class TestCacheSuite:
    def test_get_builds_once_then_hits(self, figure1_store):
        clear_value_index_cache()
        first = get_value_index(figure1_store)
        info = value_index_cache_info()
        assert (info.builds, info.hits) == (1, 0)
        assert get_value_index(figure1_store) is first
        info = value_index_cache_info()
        assert (info.builds, info.hits) == (1, 1)
        assert info.currsize == 1

    def test_seed_installs_without_build(self, figure1_store):
        clear_value_index_cache()
        index = ValueIndex.from_path_columns(figure1_store, [])
        seed_value_index(figure1_store, index)
        assert value_index_cache_info().builds == 0
        assert cached_value_index(figure1_store) is index
        assert get_value_index(figure1_store) is index

    def test_seed_rejects_foreign_store(self, figure1_store, plays_store):
        index = ValueIndex.from_path_columns(plays_store, [])
        with pytest.raises(ValueError):
            seed_value_index(figure1_store, index)

    def test_cached_peek_never_builds(self, plays_store):
        clear_value_index_cache()
        assert cached_value_index(plays_store) is None
        assert value_index_cache_info().builds == 0
