"""Unit tests for paths and the Def. 5 prefix order."""

import pytest

from repro.datamodel.paths import (
    ATTRIBUTE,
    ELEMENT,
    Path,
    Step,
    is_prefix,
    longest_common_prefix,
    prefix_leq,
    relative_suffix,
)


class TestStep:
    def test_default_kind_is_element(self):
        assert Step("a").kind == ELEMENT

    def test_attribute_step_str(self):
        assert str(Step("key", ATTRIBUTE)) == "@key"

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            Step("")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Step("a", "~")


class TestPathConstruction:
    def test_root(self):
        path = Path.root("bib")
        assert path.depth() == 1
        assert path.labels == ("bib",)

    def test_of_builds_element_path(self):
        path = Path.of("a", "b", "c")
        assert len(path) == 3
        assert all(step.kind == ELEMENT for step in path)

    def test_child_and_attribute_extension(self):
        path = Path.root("bib").child("article").attribute("key")
        assert str(path) == "bib/article@key"
        assert path.last.kind == ATTRIBUTE

    def test_parent(self):
        path = Path.of("a", "b")
        assert path.parent() == Path.of("a")
        assert Path.of("a").parent() == Path()

    def test_parent_of_empty_raises(self):
        with pytest.raises(ValueError):
            Path().parent()

    def test_slice_returns_path(self):
        path = Path.of("a", "b", "c")
        assert path[:2] == Path.of("a", "b")
        assert isinstance(path[:2], Path)

    def test_index_returns_step(self):
        assert Path.of("a", "b")[1] == Step("b")


class TestPathParsing:
    def test_round_trip_simple(self):
        for text in ("bib", "bib/article", "bib/article@key", "a/b/c@x"):
            assert str(Path.parse(text)) == text

    def test_parse_matches_construction(self):
        assert Path.parse("bib/article@key") == Path.root("bib").child(
            "article"
        ).attribute("key")

    def test_parse_figure2_relation_name(self):
        path = Path.parse("bibliography/institute/article/author/cdata@string")
        assert path.depth() == 6
        assert path.last == Step("string", ATTRIBUTE)

    def test_parse_empty_attribute_rejected(self):
        with pytest.raises(ValueError):
            Path.parse("a@")


class TestPrefixOrder:
    def test_is_prefix_reflexive(self):
        path = Path.of("a", "b")
        assert is_prefix(path, path)

    def test_is_prefix_proper(self):
        assert is_prefix(Path.of("a"), Path.of("a", "b"))
        assert not is_prefix(Path.of("a", "b"), Path.of("a"))
        assert not is_prefix(Path.of("b"), Path.of("a", "b"))

    def test_prefix_leq_direction_matches_def5(self):
        # path(o1) ⪯ path(o2) iff path(o2) is a prefix of path(o1):
        # the *deeper* path is the smaller element.
        deep = Path.of("bib", "article", "author")
        shallow = Path.of("bib", "article")
        assert prefix_leq(deep, shallow)
        assert not prefix_leq(shallow, deep)

    def test_prefix_leq_reflexive(self):
        path = Path.of("x", "y")
        assert prefix_leq(path, path)

    def test_incomparable_paths(self):
        left = Path.of("a", "b")
        right = Path.of("a", "c")
        assert not prefix_leq(left, right)
        assert not prefix_leq(right, left)


class TestDerivedOperations:
    def test_longest_common_prefix(self):
        left = Path.of("a", "b", "c")
        right = Path.of("a", "b", "d", "e")
        assert longest_common_prefix(left, right) == Path.of("a", "b")

    def test_longest_common_prefix_disjoint(self):
        assert longest_common_prefix(Path.of("a"), Path.of("b")) == Path()

    def test_relative_suffix(self):
        longer = Path.of("a", "b", "c")
        assert relative_suffix(longer, Path.of("a")) == Path.of("b", "c")

    def test_relative_suffix_requires_prefix(self):
        with pytest.raises(ValueError):
            relative_suffix(Path.of("a", "b"), Path.of("x"))

    def test_relative_suffix_of_self_is_empty(self):
        path = Path.of("a", "b")
        assert relative_suffix(path, path).is_empty()


class TestHashingEquality:
    def test_equal_paths_equal_hash(self):
        assert hash(Path.of("a", "b")) == hash(Path.of("a", "b"))

    def test_attribute_vs_element_step_distinct(self):
        element_path = Path.of("a", "b")
        attribute_path = Path.root("a").attribute("b")
        assert element_path != attribute_path

    def test_usable_as_dict_key(self):
        mapping = {Path.of("a"): 1, Path.of("a", "b"): 2}
        assert mapping[Path.of("a", "b")] == 2
