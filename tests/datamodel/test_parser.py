"""Unit tests for the hand-written XML parser."""

import pytest

from repro.datamodel.document import CDATA_LABEL
from repro.datamodel.errors import XMLParseError
from repro.datamodel.parser import parse_document, parse_fragment


class TestElements:
    def test_single_element(self):
        doc = parse_document("<root/>")
        assert doc.root.label == "root"
        assert doc.node_count == 1

    def test_nested_elements(self):
        doc = parse_document("<a><b><c/></b></a>")
        assert [n.label for n in doc.iter_nodes()] == ["a", "b", "c"]

    def test_siblings_keep_order(self):
        doc = parse_document("<r><x/><y/><z/></r>")
        assert [c.label for c in doc.root.children] == ["x", "y", "z"]
        assert [c.rank for c in doc.root.children] == [0, 1, 2]

    def test_mismatched_tags(self):
        with pytest.raises(XMLParseError):
            parse_document("<a><b></a></b>")

    def test_unterminated(self):
        with pytest.raises(XMLParseError):
            parse_document("<a><b>")

    def test_content_after_root(self):
        with pytest.raises(XMLParseError):
            parse_document("<a/><b/>")

    def test_names_with_namespace_prefix(self):
        doc = parse_document("<dc:title>x</dc:title>")
        assert doc.root.label == "dc:title"


class TestAttributes:
    def test_attributes(self):
        doc = parse_document('<article key="BB99" lang=\'en\'/>')
        assert doc.root.attributes == {"key": "BB99", "lang": "en"}

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document('<a k="1" k="2"/>')

    def test_unquoted_attribute_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document("<a k=1/>")

    def test_entities_in_attribute(self):
        doc = parse_document('<a k="x &amp; y &#65;"/>')
        assert doc.root.attributes["k"] == "x & y A"


class TestText:
    def test_text_becomes_cdata_node(self):
        doc = parse_document("<year>1999</year>")
        cdata = doc.root.children[0]
        assert cdata.label == CDATA_LABEL
        assert cdata.string_value == "1999"

    def test_mixed_content(self):
        doc = parse_document("<p>hello <b>bold</b> world</p>")
        labels = [c.label for c in doc.root.children]
        assert labels == [CDATA_LABEL, "b", CDATA_LABEL]
        assert doc.root.children[0].string_value == "hello"
        assert doc.root.children[2].string_value == "world"

    def test_whitespace_only_dropped_by_default(self):
        doc = parse_document("<r>\n  <a/>\n</r>")
        assert [c.label for c in doc.root.children] == ["a"]

    def test_keep_whitespace(self):
        doc = parse_document("<r> <a/> </r>", keep_whitespace=True)
        assert [c.label for c in doc.root.children] == [
            CDATA_LABEL,
            "a",
            CDATA_LABEL,
        ]

    def test_entity_decoding(self):
        doc = parse_document("<t>Hacking &amp; RSI &lt;fun&gt; &apos;q&apos;</t>")
        assert doc.root.children[0].string_value == "Hacking & RSI <fun> 'q'"

    def test_numeric_character_references(self):
        doc = parse_document("<t>&#72;&#x69;</t>")
        assert doc.root.children[0].string_value == "Hi"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document("<t>&nope;</t>")

    def test_cdata_section(self):
        doc = parse_document("<t><![CDATA[a < b & c]]></t>")
        assert doc.root.children[0].string_value == "a < b & c"


class TestMisc:
    def test_xml_declaration_and_comments(self):
        doc = parse_document(
            '<?xml version="1.0"?><!-- head --><r><!-- in --><a/></r><!-- tail -->'
        )
        assert [c.label for c in doc.root.children] == ["a"]

    def test_processing_instruction_skipped(self):
        doc = parse_document("<r><?php echo ?><a/></r>")
        assert [c.label for c in doc.root.children] == ["a"]

    def test_doctype_skipped(self):
        doc = parse_document(
            "<!DOCTYPE dblp SYSTEM \"dblp.dtd\" [<!ENTITY x 'y'>]><r/>"
        )
        assert doc.root.label == "r"

    def test_error_position_reported(self):
        with pytest.raises(XMLParseError) as info:
            parse_document("<r>\n<bad</r>")
        assert info.value.line == 2

    def test_first_oid(self):
        doc = parse_document("<a><b/></a>", first_oid=1)
        assert doc.root.oid == 1
        assert doc.root.children[0].oid == 2

    def test_parse_fragment_returns_unfrozen(self):
        root = parse_fragment("<a><b/></a>")
        assert root.oid == -1


class TestFigure1Equivalence:
    """Parsing the Figure 1 XML yields the same structure as the builder."""

    XML = """
    <bibliography>
      <institute>
        <article key="BB99">
          <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
          <title>How to Hack</title>
          <year>1999</year>
        </article>
        <article key="BK99">
          <author>Bob Byte</author>
          <year>1999</year>
          <title>Hacking &amp; RSI</title>
        </article>
      </institute>
    </bibliography>
    """

    def test_matches_builder_document(self):
        from repro.datasets.figure1 import figure1_document

        parsed = parse_document(self.XML, first_oid=1)
        built = figure1_document()
        assert parsed.node_count == built.node_count
        for oid in parsed.iter_oids():
            assert parsed.node(oid).label == built.node(oid).label
            assert parsed.node(oid).attributes == built.node(oid).attributes
