"""Unit tests for the fluent document builder."""

import pytest

from repro.datamodel.builder import DocumentBuilder, element


class TestElement:
    def test_element_with_text_and_attrs(self):
        node = element("year", "1999", era="ce")
        assert node.text == "1999"
        assert node.attributes["era"] == "ce"

    def test_element_plain(self):
        node = element("x")
        assert node.text is None and node.children == []


class TestBuilder:
    def test_down_up_structure(self):
        doc = (
            DocumentBuilder("bib")
            .down("article")
            .leaf("year", "1999")
            .up()
            .build()
        )
        article = doc.root.children[0]
        assert article.label == "article"
        assert article.children[0].label == "year"

    def test_up_past_root_raises(self):
        builder = DocumentBuilder("r")
        with pytest.raises(ValueError):
            builder.up()

    def test_up_multiple_levels(self):
        builder = DocumentBuilder("r").down("a").down("b").down("c")
        builder.up(3)
        assert builder.current.label == "r"

    def test_text_and_attr_on_current(self):
        doc = DocumentBuilder("r").down("x").text("val").attr("k", "v").up().build()
        x = doc.root.children[0]
        assert x.attributes["k"] == "v"
        # text materializes into a cdata child at freeze
        assert x.children[0].string_value == "val"

    def test_subtree_grafting(self):
        extra = element("extra", "data")
        doc = DocumentBuilder("r").subtree(extra).build()
        assert doc.root.children[0].label == "extra"

    def test_builder_single_use(self):
        builder = DocumentBuilder("r")
        builder.build()
        with pytest.raises(ValueError):
            builder.build()

    def test_root_attributes(self):
        doc = DocumentBuilder("r", version="1").build()
        assert doc.root.attributes == {"version": "1"}
