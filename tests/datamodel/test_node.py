"""Unit tests for the conceptual tree nodes."""

import pytest

from repro.datamodel.node import CDATA_ATTRIBUTE, Node


class TestConstruction:
    def test_requires_label(self):
        with pytest.raises(ValueError):
            Node("")

    def test_attributes_copied(self):
        attrs = {"key": "BB99"}
        node = Node("article", attributes=attrs)
        attrs["key"] = "changed"
        assert node.attributes["key"] == "BB99"


class TestText:
    def test_text_round_trip(self):
        node = Node("year")
        node.text = "1999"
        assert node.text == "1999"
        assert node.attributes[CDATA_ATTRIBUTE] == "1999"

    def test_text_none_removes(self):
        node = Node("year")
        node.text = "1999"
        node.text = None
        assert node.text is None
        assert CDATA_ATTRIBUTE not in node.attributes

    def test_plain_attributes_excludes_cdata(self):
        node = Node("article", attributes={"key": "X"})
        node.text = "body"
        assert node.plain_attributes == {"key": "X"}


class TestTreeStructure:
    def make_tree(self):
        root = Node("root")
        a = root.append(Node("a"))
        b = root.append(Node("b"))
        c = a.append(Node("c"))
        return root, a, b, c

    def test_append_sets_parent_and_rank(self):
        root, a, b, c = self.make_tree()
        assert a.parent is root and b.parent is root
        assert (a.rank, b.rank) == (0, 1)
        assert c.parent is a and c.rank == 0

    def test_preorder(self):
        root, a, b, c = self.make_tree()
        assert [n.label for n in root.iter_preorder()] == ["root", "a", "c", "b"]

    def test_ancestors(self):
        root, a, b, c = self.make_tree()
        assert [n.label for n in c.iter_ancestors()] == ["a", "root"]
        assert [n.label for n in c.iter_ancestors(include_self=True)] == [
            "c",
            "a",
            "root",
        ]

    def test_depth(self):
        root, a, b, c = self.make_tree()
        assert root.depth() == 1
        assert c.depth() == 3

    def test_is_leaf_and_subtree_size(self):
        root, a, b, c = self.make_tree()
        assert c.is_leaf() and b.is_leaf()
        assert not root.is_leaf()
        assert root.subtree_size() == 4

    def test_extend(self):
        root = Node("root")
        root.extend([Node("x"), Node("y")])
        assert [child.rank for child in root.children] == [0, 1]


class TestFindHelpers:
    def test_find_first(self):
        root = Node("root")
        root.append(Node("a"))
        second = root.append(Node("a"))
        assert root.find("a") is root.children[0]
        assert root.find("missing") is None
        assert root.find_all("a") == [root.children[0], second]

    def test_descendant_text(self):
        root = Node("root")
        child = root.append(Node("p"))
        child.text = "hello"
        other = root.append(Node("q"))
        other.text = "world"
        assert root.descendant_text() == "hello world"

    def test_string_value_of_cdata_node(self):
        node = Node("cdata", attributes={"string": "Ben"})
        assert node.string_value == "Ben"
