"""Unit tests for Document: freezing, OIDs, paths, ancestry."""

import pytest

from repro.datamodel.builder import DocumentBuilder
from repro.datamodel.document import CDATA_LABEL, Document
from repro.datamodel.errors import ModelError, UnknownOIDError
from repro.datamodel.node import Node
from repro.datamodel.paths import Path


def small_doc(first_oid=0):
    builder = DocumentBuilder("root")
    builder.down("a").leaf("b", "text-b").up()
    builder.leaf("c")
    return builder.build(first_oid=first_oid)


class TestFreezing:
    def test_preorder_oids(self):
        doc = small_doc()
        labels = [doc.node(oid).label for oid in doc.iter_oids()]
        # root, a, b, cdata (materialized under b), c
        assert labels == ["root", "a", "b", CDATA_LABEL, "c"]
        assert [doc.node(oid).oid for oid in doc.iter_oids()] == list(range(5))

    def test_first_oid_offset(self):
        doc = small_doc(first_oid=10)
        assert doc.root.oid == 10
        assert doc.last_oid == 14
        assert doc.node(11).label == "a"

    def test_root_with_parent_rejected(self):
        parent = Node("p")
        child = parent.append(Node("c"))
        with pytest.raises(ModelError):
            Document(child)

    def test_cdata_normalization_creates_string_attr(self):
        doc = small_doc()
        cdata_nodes = doc.nodes_with_label(CDATA_LABEL)
        assert len(cdata_nodes) == 1
        assert cdata_nodes[0].attributes == {"string": "text-b"}

    def test_normalization_skippable(self):
        root = Node("root")
        root.text = "hello"
        doc = Document(root, normalize_cdata=False)
        assert doc.node_count == 1
        assert doc.root.text == "hello"

    def test_normalization_idempotent_for_cdata_nodes(self):
        root = Node("root")
        cdata = Node(CDATA_LABEL)
        cdata.text = "x"  # attribute form on an explicit cdata node
        root.append(cdata)
        doc = Document(root)
        assert doc.node_count == 2
        assert doc.nodes_with_label(CDATA_LABEL)[0].string_value == "x"


class TestLookups:
    def test_node_unknown_oid(self):
        doc = small_doc()
        with pytest.raises(UnknownOIDError):
            doc.node(99)
        with pytest.raises(UnknownOIDError):
            doc.path(-1)

    def test_contains(self):
        doc = small_doc(first_oid=5)
        assert 5 in doc and 9 in doc
        assert 4 not in doc and 10 not in doc
        assert "5" not in doc

    def test_paths(self):
        doc = small_doc()
        assert doc.path(0) == Path.of("root")
        assert doc.path(2) == Path.of("root", "a", "b")
        assert str(doc.path(3)) == "root/a/b/cdata"

    def test_parent_oid(self):
        doc = small_doc()
        assert doc.parent_oid(0) is None
        assert doc.parent_oid(1) == 0
        assert doc.parent_oid(3) == 2

    def test_depth_equals_path_length(self):
        doc = small_doc()
        for oid in doc.iter_oids():
            assert doc.depth(oid) == len(doc.path(oid))


class TestAncestry:
    def test_ancestry_chain(self):
        doc = small_doc()
        assert doc.ancestry(3) == [3, 2, 1, 0]
        assert doc.ancestry(0) == [0]

    def test_is_ancestor_reflexive(self):
        doc = small_doc()
        assert doc.is_ancestor(2, 2)

    def test_is_ancestor(self):
        doc = small_doc()
        assert doc.is_ancestor(0, 3)
        assert doc.is_ancestor(1, 3)
        assert not doc.is_ancestor(3, 1)
        assert not doc.is_ancestor(4, 3)


class TestSummaries:
    def test_distinct_paths_order(self):
        doc = small_doc()
        paths = [str(p) for p in doc.distinct_paths()]
        assert paths == ["root", "root/a", "root/a/b", "root/a/b/cdata", "root/c"]

    def test_path_summary_counts(self):
        builder = DocumentBuilder("r")
        builder.leaf("x").leaf("x").leaf("y")
        doc = builder.build()
        counts = {str(p): n for p, n in doc.path_summary_counts().items()}
        assert counts == {"r": 1, "r/x": 2, "r/y": 1}

    def test_nodes_on_path(self):
        doc = small_doc()
        assert [n.oid for n in doc.nodes_on_path(Path.of("root", "a"))] == [1]
        assert doc.nodes_on_path(Path.of("nope")) == []

    def test_document_order(self):
        doc = small_doc(first_oid=3)
        assert doc.document_order(3) == 0
        assert doc.document_order(5) == 2
