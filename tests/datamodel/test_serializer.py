"""Unit tests for XML serialization and round-trips."""

from repro.datamodel.builder import DocumentBuilder
from repro.datamodel.parser import parse_document
from repro.datamodel.serializer import (
    escape_attribute,
    escape_text,
    serialize,
    serialize_node,
)


class TestEscaping:
    def test_escape_text(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_escape_attribute(self):
        assert escape_attribute('a "quote" & <tag>') == (
            "a &quot;quote&quot; &amp; &lt;tag>"
        )

    def test_escape_attribute_whitespace_controls(self):
        assert escape_attribute("a\nb\tc") == "a&#10;b&#9;c"


class TestSerialization:
    def test_empty_element(self):
        doc = DocumentBuilder("r").build()
        assert serialize(doc) == "<r/>"

    def test_attributes_in_insertion_order(self):
        doc = DocumentBuilder("r", b="2", a="1").build()
        assert serialize(doc) == '<r b="2" a="1"/>'

    def test_text_content_inline(self):
        doc = DocumentBuilder("r").leaf("year", "1999").build()
        assert serialize(doc) == "<r><year>1999</year></r>"

    def test_declaration(self):
        doc = DocumentBuilder("r").build()
        assert serialize(doc, declaration=True).startswith("<?xml")

    def test_indented_output(self):
        doc = DocumentBuilder("r").down("a").leaf("b", "x").up().build()
        text = serialize(doc, indent=2)
        assert "\n  <a>" in text
        assert "<b>x</b>" in text

    def test_serialize_node_subtree(self):
        doc = DocumentBuilder("r").down("a").leaf("b", "x").up().build()
        assert serialize_node(doc.root.children[0]) == "<a><b>x</b></a>"


class TestRoundTrip:
    CASES = [
        "<r/>",
        "<r><a/><b/></r>",
        '<r k="v"><a>text</a></r>',
        "<r><p>mix <b>bold</b> tail</p></r>",
        "<r><t>Hacking &amp; RSI</t></r>",
        '<r a="1 &amp; 2"/>',
    ]

    def test_parse_serialize_fixpoint(self):
        # serialize(parse(x)) is a fixpoint: one more round-trip is stable.
        for case in self.CASES:
            once = serialize(parse_document(case))
            twice = serialize(parse_document(once))
            assert once == twice

    def test_structure_preserved(self):
        text = '<bib><article key="X"><year>1999</year></article></bib>'
        doc1 = parse_document(text)
        doc2 = parse_document(serialize(doc1))
        assert doc1.node_count == doc2.node_count
        for oid in doc1.iter_oids():
            assert doc1.node(oid).label == doc2.node(oid).label
            assert doc1.node(oid).attributes == doc2.node(oid).attributes

    def test_indented_round_trip_structure(self):
        text = "<r><a><b>x</b></a><c/></r>"
        pretty = serialize(parse_document(text), indent=2)
        doc = parse_document(pretty)
        assert [n.label for n in doc.iter_nodes()] == [
            "r",
            "a",
            "b",
            "cdata",
            "c",
        ]
