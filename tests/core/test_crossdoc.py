"""Unit tests for the §4 cross-bibliography application."""

import pytest

from repro.core import NearestConceptEngine
from repro.core.crossdoc import CrossMatch, distinctive_terms, find_elsewhere
from repro.datamodel.parser import parse_document
from repro.monet import monet_transform

# The same two publications under two entirely different mark-ups.
BIB_A = """
<bibliography>
  <institute>
    <article key="BB99">
      <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
      <title>How to Hack</title><year>1999</year>
    </article>
    <article key="XY00">
      <author>Xavier Young</author>
      <title>Query Rewriting Considered</title><year>2000</year>
    </article>
  </institute>
</bibliography>
"""

BIB_B = """
<refs>
  <entry>
    <who>Bit, Ben</who>
    <what>How to Hack</what>
    <when>1999</when>
  </entry>
  <entry>
    <who>Other, Person</who>
    <what>Unrelated Compilers</what>
    <when>1987</when>
  </entry>
</refs>
"""


@pytest.fixture(scope="module")
def engines():
    source = NearestConceptEngine(monet_transform(parse_document(BIB_A)))
    target = NearestConceptEngine(monet_transform(parse_document(BIB_B)))
    return source, target


def find_item(source):
    (concept,) = source.nearest_concepts("Bit", "1999")
    assert concept.tag == "article"
    return concept.oid


class TestDistinctiveTerms:
    def test_rarest_first_and_target_filtered(self, engines):
        source, target = engines
        item = find_item(source)
        probes = distinctive_terms(source, item, target, max_terms=4)
        # all probes exist in the target vocabulary
        for probe in probes:
            assert target.index.document_frequency(probe) > 0
        # 'ben'/'bit'/'hack' survive, '1999' too; rarity order holds
        frequencies = [target.index.document_frequency(p) for p in probes]
        assert frequencies == sorted(frequencies)
        assert len(probes) >= 2

    def test_unshared_vocabulary_yields_nothing(self, engines):
        source, target = engines
        # the Xavier Young article shares no terms with BIB_B
        (concept,) = source.nearest_concepts("Xavier", "2000")
        probes = distinctive_terms(source, concept.oid, target)
        assert probes == []

    def test_deterministic(self, engines):
        source, target = engines
        item = find_item(source)
        assert distinctive_terms(source, item, target) == distinctive_terms(
            source, item, target
        )


class TestFindElsewhere:
    def test_finds_the_entry_under_different_markup(self, engines):
        source, target = engines
        item = find_item(source)
        matches = find_elsewhere(source, item, target)
        assert matches
        best = matches[0]
        tag = target.store.summary.label(
            target.store.pid_of(best.concept.oid)
        )
        assert tag in {"entry", "who", "what", "cdata"}
        # the top candidate sits inside the first (matching) entry
        text = target.snippet(best.concept.oid)
        assert "Bit" in text or "Hack" in text or "1999" in text

    def test_coverage_ranks_full_matches_first(self, engines):
        source, target = engines
        item = find_item(source)
        matches = find_elsewhere(source, item, target)
        coverages = [match.coverage for match in matches]
        assert coverages == sorted(coverages, reverse=True)
        assert matches[0].coverage > 0

    def test_absent_item_returns_empty(self, engines):
        source, target = engines
        (concept,) = source.nearest_concepts("Xavier", "2000")
        assert find_elsewhere(source, concept.oid, target) == []

    def test_limit_respected(self, engines):
        source, target = engines
        item = find_item(source)
        matches = find_elsewhere(source, item, target, limit=1)
        assert len(matches) <= 1

    def test_round_trip_both_directions(self, engines):
        """The lookup also works B → A (mark-up agnostic both ways)."""
        source, target = engines
        (entry,) = target.nearest_concepts("Bit", "Hack", limit=1)
        matches = find_elsewhere(target, entry.oid, source)
        assert matches
        top_text = source.snippet(matches[0].concept.oid)
        assert "Hack" in top_text or "Bit" in top_text
