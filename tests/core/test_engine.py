"""Unit tests for the NearestConceptEngine pipeline."""

import pytest

from repro.core import NearestConceptEngine
from repro.datasets.figure1 import FIGURE1_OIDS as O


class TestNearestConcepts:
    def test_requires_two_terms(self, figure1_engine):
        with pytest.raises(ValueError):
            figure1_engine.nearest_concepts("Bit")

    def test_basic_query(self, figure1_engine):
        concepts = figure1_engine.nearest_concepts("Bit", "1999")
        assert [c.oid for c in concepts] == [O["article1"]]
        assert concepts[0].tag == "article"
        assert concepts[0].terms == ("1999", "Bit")

    def test_same_association_two_terms(self, figure1_engine):
        concepts = figure1_engine.nearest_concepts("Bob", "Byte")
        assert [c.oid for c in concepts] == [O["cdata_bob_byte"]]
        assert concepts[0].joins == 0

    def test_no_hits_no_concepts(self, figure1_engine):
        assert figure1_engine.nearest_concepts("zz", "qq") == []

    def test_three_terms(self, figure1_engine):
        concepts = figure1_engine.nearest_concepts("Ben", "Bit", "Hack")
        oids = [c.oid for c in concepts]
        assert O["author1"] in oids  # Ben+Bit
        # author meet retires Ben and Bit; Hack's hit stays single.

    def test_ranking_by_joins(self, figure1_engine):
        concepts = figure1_engine.nearest_concepts("Ben", "1999")
        # Ben meets article1's 1999 at the article (5 joins) — the
        # orphan second 1999 cannot produce a second concept.
        assert [c.oid for c in concepts] == [O["article1"]]


class TestRestrictionsAndOptions:
    def test_exclude_root(self, figure1_engine):
        baseline = figure1_engine.nearest_concepts("How", "RSI")
        assert [c.oid for c in baseline] == [O["institute"]]
        excluded = figure1_engine.nearest_concepts(
            "How", "RSI", exclude_paths=["bibliography/institute"]
        )
        assert excluded == []

    def test_exclude_root_flag(self, figure1_store):
        engine = NearestConceptEngine(figure1_store)
        # Craft a root-level meet: terms under different institutes
        # don't exist in Figure 1, so exercise the flag by excluding
        # and checking nothing breaks.
        concepts = engine.nearest_concepts("Bit", "1999", exclude_root=True)
        assert [c.oid for c in concepts] == [O["article1"]]

    def test_require_all_terms(self, figure1_engine):
        loose = figure1_engine.nearest_concepts("Hack", "1999", "Ben")
        strict = figure1_engine.nearest_concepts(
            "Hack", "1999", "Ben", require_all_terms=True
        )
        assert len(strict) <= len(loose)
        for concept in strict:
            assert set(concept.terms) == {"Hack", "1999", "Ben"}

    def test_within_filters_loose_concepts(self, figure1_engine):
        all_concepts = figure1_engine.nearest_concepts("Bit", "1999")
        assert all_concepts[0].joins == 5
        assert figure1_engine.nearest_concepts("Bit", "1999", within=4) == []
        assert (
            figure1_engine.nearest_concepts("Bit", "1999", within=5)
            == all_concepts
        )

    def test_limit(self, figure1_engine):
        concepts = figure1_engine.nearest_concepts(
            "Hack", "1999", limit=1
        )
        assert len(concepts) <= 1


class TestPrimitiveAccess:
    def test_meet(self, figure1_engine):
        assert figure1_engine.meet(O["cdata_ben"], O["cdata_bit"]).oid == (
            O["author1"]
        )

    def test_meet_within(self, figure1_engine):
        assert figure1_engine.meet_within(O["cdata_ben"], O["cdata_bit"], 2) is None

    def test_meet_of_sets(self, figure1_engine):
        meets = figure1_engine.meet_of_sets(
            [O["cdata_bit"]], [O["cdata_1999_a"]]
        )
        assert [m.oid for m in meets] == [O["article1"]]

    def test_meet_of_relations(self, figure1_engine, figure1_store):
        from repro.core.meet_general import group_by_pid

        relations = group_by_pid(
            figure1_store, [O["cdata_bit"], O["cdata_1999_a"]]
        )
        meets = figure1_engine.meet_of_relations(relations)
        assert [m.oid for m in meets] == [O["article1"]]


class TestPresentation:
    def test_snippet(self, figure1_engine):
        (concept,) = figure1_engine.nearest_concepts("Bit", "1999")
        snippet = figure1_engine.snippet(concept)
        assert "Ben Bit" in snippet and "1999" in snippet

    def test_snippet_truncation(self, figure1_engine):
        text = figure1_engine.snippet(O["article1"], width=10)
        assert len(text) <= 10

    def test_to_xml(self, figure1_engine):
        (concept,) = figure1_engine.nearest_concepts("Bit", "1999")
        xml = figure1_engine.to_xml(concept)
        assert xml.startswith("<article")
        assert "<lastname>Bit</lastname>" in xml

    def test_concept_sort_key_deterministic(self, figure1_engine):
        concepts = figure1_engine.nearest_concepts("Hack", "1999")
        keys = [c.sort_key() for c in concepts]
        assert keys == sorted(keys)
