"""Unit tests for meet_S (Fig. 4): minimality, invariance, traces."""

import pytest

from repro.core.meet_sets import meet_sets, meet_sets_traced
from repro.datamodel.errors import ModelError
from repro.datasets.figure1 import FIGURE1_OIDS as O


class TestBasics:
    def test_empty_inputs(self, figure1_store):
        assert meet_sets(figure1_store, [], [O["year1"]]) == []
        assert meet_sets(figure1_store, [O["year1"]], []) == []

    def test_identical_singletons(self, figure1_store):
        meets = meet_sets(figure1_store, [O["year1"]], [O["year1"]])
        assert [m.oid for m in meets] == [O["year1"]]

    def test_heterogeneous_set_rejected(self, figure1_store):
        with pytest.raises(ModelError):
            meet_sets(
                figure1_store, [O["year1"], O["author1"]], [O["year2"]]
            )

    def test_origins_reported(self, figure1_store):
        meets = meet_sets(
            figure1_store, [O["cdata_1999_a"]], [O["cdata_1999_b"]]
        )
        assert len(meets) == 1
        assert meets[0].oid == O["institute"]
        assert meets[0].origins == (O["cdata_1999_a"], O["cdata_1999_b"])


class TestMinimality:
    def test_minimal_meets_only(self, figure1_store):
        """Once the Bit/1999-article pair meets at the article, the
        leftover 1999 hit cannot drag the pair up to the institute."""
        meets = meet_sets(
            figure1_store,
            [O["cdata_bit"]],
            [O["cdata_1999_a"], O["cdata_1999_b"]],
        )
        assert [m.oid for m in meets] == [O["article1"]]

    def test_two_pairs_meet_independently(self, figure1_store):
        """title hits vs year hits: each article hosts its own meet."""
        meets = meet_sets(
            figure1_store,
            [O["cdata_how_to_hack"], O["cdata_hacking_rsi"]],
            [O["cdata_1999_a"], O["cdata_1999_b"]],
        )
        assert sorted(m.oid for m in meets) == [O["article1"], O["article2"]]

    def test_input_order_invariance(self, figure1_store):
        left = [O["cdata_how_to_hack"], O["cdata_hacking_rsi"]]
        right = [O["cdata_1999_a"], O["cdata_1999_b"]]
        forward = {m.oid for m in meet_sets(figure1_store, left, right)}
        backward = {
            m.oid for m in meet_sets(figure1_store, left[::-1], right[::-1])
        }
        swapped = {m.oid for m in meet_sets(figure1_store, right, left)}
        assert forward == backward == swapped

    def test_no_combinatorial_explosion(self, figure1_store):
        """Output cardinality is bounded by min(|O₁|, |O₂|) here: every
        emitted meet retires at least one input from each side."""
        left = [O["cdata_how_to_hack"], O["cdata_hacking_rsi"]]
        right = [O["cdata_1999_a"], O["cdata_1999_b"]]
        meets = meet_sets(figure1_store, left, right)
        assert len(meets) <= min(len(left), len(right))


class TestAgainstPairwise:
    def test_emitted_meets_are_true_lcas(self, figure1_store):
        from repro.core.meet_pair import meet2

        meets = meet_sets(
            figure1_store,
            [O["cdata_how_to_hack"], O["cdata_hacking_rsi"]],
            [O["cdata_1999_a"], O["cdata_1999_b"]],
        )
        for meet in meets:
            for left in meet.left_origins:
                for right in meet.right_origins:
                    assert meet2(figure1_store, left, right) == meet.oid


class TestTrace:
    def test_trace_counters(self, figure1_store):
        trace = meet_sets_traced(
            figure1_store, [O["cdata_bit"]], [O["cdata_1999_a"]]
        )
        assert len(trace.meets) == 1
        assert trace.rounds >= 1
        assert trace.parent_joins >= 1
        assert trace.intersections == trace.rounds

    def test_same_path_sets(self, figure1_store):
        """Both sets on one path (year cdata): lock-step ascent."""
        trace = meet_sets_traced(
            figure1_store, [O["cdata_1999_a"]], [O["cdata_1999_b"]]
        )
        assert [m.oid for m in trace.meets] == [O["institute"]]
