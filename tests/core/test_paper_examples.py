"""The worked examples of §3.1 and §3.2, replayed verbatim on Figure 1.

These tests pin the behavioural contract of the reproduction: every
example the paper computes by hand must come out identically (up to
our pre-order OID assignment, which matches Figure 1's drawing).
"""

from repro.core import (
    NearestConceptEngine,
    meet2,
    meet2_traced,
    meet_general,
    meet_sets,
)
from repro.core.meet_general import group_by_pid
from repro.datasets.figure1 import FIGURE1_OIDS as O


class TestSection31Examples:
    def test_ben_and_bit_meet_at_author(self, figure1_store, figure1_engine):
        """Full-text "Ben"/"Bit" → associations ⟨o6,Ben⟩, ⟨o8,Bit⟩;
        meet₂ = the author node: "the two associations constitute an
        author's name"."""
        ben = figure1_engine.term_hits("Ben").oids()
        bit = figure1_engine.term_hits("Bit").oids()
        assert ben == {O["cdata_ben"]}
        assert bit == {O["cdata_bit"]}
        assert meet2(figure1_store, O["cdata_ben"], O["cdata_bit"]) == O["author1"]

    def test_bob_and_byte_meet_is_the_cdata_node(self, figure1_store, figure1_engine):
        """Both searches return the same association ⟨o15,"Bob Byte"⟩;
        the meet is that cdata node itself, "a son of an author node"."""
        bob = figure1_engine.term_hits("Bob").oids()
        byte = figure1_engine.term_hits("Byte").oids()
        assert bob == byte == {O["cdata_bob_byte"]}
        assert meet2(
            figure1_store, O["cdata_bob_byte"], O["cdata_bob_byte"]
        ) == O["cdata_bob_byte"]
        parent = figure1_store.parent_of(O["cdata_bob_byte"])
        assert figure1_store.summary.label(figure1_store.pid_of(parent)) == "author"

    def test_bit_and_1999_meet_at_article(self, figure1_store):
        """meet₂(å_Bit, å_1999-of-article-1) reveals "Mr Bit published
        an article in 1999"."""
        assert meet2(figure1_store, O["cdata_bit"], O["cdata_1999_a"]) == O["article1"]

    def test_bit_and_other_1999_meet_at_institute(self, figure1_store):
        """The cross pair only meets at the institute's bibliography."""
        assert (
            meet2(figure1_store, O["cdata_bit"], O["cdata_1999_b"])
            == O["institute"]
        )

    def test_nested_meet_collapses_to_institute(self, figure1_store):
        """meet(å1, meet(å2, å3)) "only reveals that the three
        associations are located in the bibliography of an institute"."""
        inner = meet2(figure1_store, O["cdata_1999_a"], O["cdata_1999_b"])
        assert inner == O["institute"]
        outer = meet2(figure1_store, O["cdata_bit"], inner)
        assert outer == O["institute"]

    def test_path_of_meet_is_longest_common_prefix(self, figure1_store):
        """First bullet of §3.1: path(meet₂) = the LCP of the paths."""
        from repro.datamodel.paths import longest_common_prefix

        meet = meet2(figure1_store, O["cdata_ben"], O["cdata_1999_a"])
        assert figure1_store.path_of(meet) == longest_common_prefix(
            figure1_store.path_of(O["cdata_ben"]),
            figure1_store.path_of(O["cdata_1999_a"]),
        )


class TestSection32SetExamples:
    def test_meet_sets_bit_vs_1999(self, figure1_store):
        """meet_S({Bit}, {1999a, 1999b}) finds the minimal meet o3 and
        removes matched inputs (no redundant institute answer)."""
        meets = meet_sets(
            figure1_store,
            [O["cdata_bit"]],
            [O["cdata_1999_a"], O["cdata_1999_b"]],
        )
        assert [m.oid for m in meets] == [O["article1"]]
        assert meets[0].left_origins == (O["cdata_bit"],)
        assert meets[0].right_origins == (O["cdata_1999_a"],)

    def test_general_meet_of_two_1999s(self, figure1_store):
        """Two hits of one relation roll up to the institute node."""
        relations = group_by_pid(
            figure1_store, [O["cdata_1999_a"], O["cdata_1999_b"]]
        )
        meets = meet_general(figure1_store, relations)
        assert [(m.oid, set(m.origins)) for m in meets] == [
            (O["institute"], {O["cdata_1999_a"], O["cdata_1999_b"]})
        ]


class TestSection32Query:
    """The reformulated intro query returns exactly the article."""

    QUERY = """
        select meet($o1, $o2)
        from   bibliography/#/%T1 $o1,
               bibliography/#/%T2 $o2
        where  $o1 contains 'Bit'
        and    $o2 contains '1999'
    """

    def test_single_answer_article(self, figure1_store):
        from repro.query import run_query

        result = run_query(figure1_store, self.QUERY)
        assert result.rows == [(O["article1"],)]

    def test_engine_pipeline_equivalent(self, figure1_engine):
        concepts = figure1_engine.nearest_concepts("Bit", "1999")
        assert [c.oid for c in concepts] == [O["article1"]]
        assert concepts[0].tag == "article"

    def test_answer_rendering(self, figure1_store):
        from repro.query import run_query

        rendered = run_query(figure1_store, self.QUERY).render_answer(figure1_store)
        assert "<answer>" in rendered and "article" in rendered


class TestDistanceExamples:
    def test_meet2_join_count_is_tree_distance(self, figure1_store):
        """§4: "the number of joins … corresponds to the number of
        edges on the shortest path"."""
        result = meet2_traced(figure1_store, O["cdata_ben"], O["cdata_bit"])
        # o6 → firstname → author ← lastname ← o8: 4 edges.
        assert result.oid == O["author1"]
        assert result.joins == 4

    def test_zero_distance(self, figure1_store):
        assert meet2_traced(figure1_store, O["year1"], O["year1"]).joins == 0

    def test_ancestor_distance(self, figure1_store):
        result = meet2_traced(figure1_store, O["cdata_ben"], O["article1"])
        assert result.oid == O["article1"]
        assert result.joins == 3
