"""Unit tests for §4 restrictions: meet_X and the k-bounded meet."""

import pytest

from repro.core.meet_general import group_by_pid
from repro.core.meet_pair import meet2_traced
from repro.core.restrictions import (
    bounded_meet2,
    meet_excluding,
    meet_restricted_to,
    resolve_pids,
)
from repro.datamodel.paths import Path
from repro.datasets.figure1 import FIGURE1_OIDS as O


class TestResolvePids:
    def test_mixed_inputs(self, figure1_store):
        pids = resolve_pids(
            figure1_store,
            ["bibliography", Path.parse("bibliography/institute"), 3],
        )
        assert 3 in pids
        assert len(pids) == 3

    def test_unknown_paths_ignored(self, figure1_store):
        assert resolve_pids(figure1_store, ["does/not/exist"]) == set()


class TestMeetExcluding:
    def relations(self, figure1_store):
        return group_by_pid(
            figure1_store, [O["cdata_1999_a"], O["cdata_1999_b"]]
        )

    def test_exclude_institute(self, figure1_store):
        """The 1999/1999 meet at the institute is filtered away."""
        relations = self.relations(figure1_store)
        kept = meet_excluding(figure1_store, relations, ["bibliography/institute"])
        assert kept == []

    def test_exclude_unrelated_path_keeps_result(self, figure1_store):
        relations = self.relations(figure1_store)
        kept = meet_excluding(figure1_store, relations, ["bibliography"])
        assert [m.oid for m in kept] == [O["institute"]]

    def test_exclude_root_case_study_configuration(self, figure1_store):
        """§4: "by setting X to {bibliography} we can filter out …
        where the meet corresponds to the document root"."""
        relations = group_by_pid(
            figure1_store, [O["article1"], O["article2"]]
        )
        unrestricted = meet_excluding(figure1_store, relations, [])
        assert [m.oid for m in unrestricted] == [O["institute"]]
        # now exclude the institute + root levels
        kept = meet_excluding(
            figure1_store,
            relations,
            ["bibliography", "bibliography/institute"],
        )
        assert kept == []


class TestMeetRestrictedTo:
    def test_keyword_search_special_case(self, figure1_store):
        """§6: restricting result types implements keyword search."""
        relations = group_by_pid(
            figure1_store, [O["cdata_bit"], O["cdata_1999_a"]]
        )
        kept = meet_restricted_to(
            figure1_store, relations, ["bibliography/institute/article"]
        )
        assert [m.oid for m in kept] == [O["article1"]]
        none = meet_restricted_to(figure1_store, relations, ["bibliography"])
        assert none == []


class TestBoundedMeet:
    def test_within_bound_returns_meet(self, figure1_store):
        result = bounded_meet2(figure1_store, O["cdata_ben"], O["cdata_bit"], 4)
        assert result is not None
        assert result.oid == O["author1"]
        assert result.joins == 4

    def test_exactly_at_bound(self, figure1_store):
        exact = meet2_traced(figure1_store, O["cdata_ben"], O["cdata_bit"]).joins
        assert bounded_meet2(figure1_store, O["cdata_ben"], O["cdata_bit"], exact)

    def test_beyond_bound_is_none(self, figure1_store):
        assert (
            bounded_meet2(figure1_store, O["cdata_ben"], O["cdata_bit"], 3)
            is None
        )

    def test_zero_bound(self, figure1_store):
        assert bounded_meet2(figure1_store, O["year1"], O["year1"], 0) is not None
        assert bounded_meet2(figure1_store, O["year1"], O["year2"], 0) is None

    def test_negative_bound(self, figure1_store):
        assert bounded_meet2(figure1_store, O["year1"], O["year1"], -1) is None

    def test_agrees_with_unbounded_when_generous(self, figure1_store):
        for oid1 in (O["cdata_ben"], O["year1"], O["article2"]):
            for oid2 in (O["cdata_1999_b"], O["title1"]):
                unbounded = meet2_traced(figure1_store, oid1, oid2)
                bounded = bounded_meet2(figure1_store, oid1, oid2, 100)
                assert bounded is not None
                assert (bounded.oid, bounded.joins) == (
                    unbounded.oid,
                    unbounded.joins,
                )
