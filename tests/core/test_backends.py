"""Differential tests: the ``indexed`` backend must agree with the
paper-faithful ``steered`` backend on every operator and every bundled
dataset — identical meet OIDs, identical origin coverage, identical
distances.  Only emission order (and the availability of walk traces)
may differ.
"""

from collections import Counter

import pytest

from repro.core.backends import (
    BACKEND_NAMES,
    IndexedBackend,
    MeetBackend,
    SteeredBackend,
    resolve_backend,
)
from repro.core.engine import NearestConceptEngine
from repro.core.graph_meet import graph_distance, graph_meet, graph_shortest_path
from repro.core.lca_index import clear_lca_index_cache, get_lca_index
from repro.core.meet_general import group_by_pid
from repro.core.restrictions import bounded_meet2
from repro.datamodel.errors import ModelError
from repro.datasets import plays_document, random_document
from repro.datasets.randomtree import random_oid_pairs
from repro.monet.transform import monet_transform


@pytest.fixture(scope="module")
def plays_store():
    store = monet_transform(plays_document())
    store.validate()
    return store


@pytest.fixture(scope="module")
def random_stores():
    return [
        monet_transform(random_document(seed, nodes=300)) for seed in (3, 11)
    ]


def _all_stores(request):
    return [
        request.getfixturevalue("figure1_store"),
        request.getfixturevalue("dblp_store"),
        request.getfixturevalue("plays_store"),
        request.getfixturevalue("multimedia_planted")[0],
        *request.getfixturevalue("random_stores"),
    ]


def _backends(store):
    return SteeredBackend(store), IndexedBackend(store)


class TestPairwise:
    def test_meet_identical_on_all_datasets(self, request):
        for store in _all_stores(request):
            steered, indexed = _backends(store)
            for oid1, oid2 in random_oid_pairs(store, 250, seed=5):
                expected = steered.meet(oid1, oid2)
                actual = indexed.meet(oid1, oid2)
                assert actual.oid == expected.oid
                assert actual.joins == expected.joins

    def test_meet_many_matches_loop(self, request):
        for store in _all_stores(request):
            steered, indexed = _backends(store)
            pairs = random_oid_pairs(store, 100, seed=9)
            assert indexed.meet_many(pairs) == steered.meet_many(pairs)

    def test_meet_within_identical(self, request):
        for store in _all_stores(request):
            steered, indexed = _backends(store)
            for oid1, oid2 in random_oid_pairs(store, 60, seed=2):
                for k in (-1, 0, 1, 2, 5, 50):
                    assert indexed.meet_within(oid1, oid2, k) == steered.meet_within(
                        oid1, oid2, k
                    )

    def test_equal_oids_short_circuit(self, figure1_store):
        steered, indexed = _backends(figure1_store)
        oid = figure1_store.root_oid
        assert indexed.meet(oid, oid) == steered.meet(oid, oid)
        assert indexed.meet_within(oid, oid, 0) == steered.meet_within(oid, oid, 0)
        assert indexed.meet_many([(oid, oid)]) == steered.meet_many([(oid, oid)])

    def test_bounded_meet2_threads_backend(self, figure1_store):
        steered, indexed = _backends(figure1_store)
        for oid1, oid2 in random_oid_pairs(figure1_store, 40, seed=1):
            for k in (0, 3, 10):
                assert bounded_meet2(
                    figure1_store, oid1, oid2, k, backend=indexed
                ) == bounded_meet2(figure1_store, oid1, oid2, k, backend=steered)


class TestRollUps:
    def _sample_oids(self, store, count, seed):
        return sorted({a for a, _ in random_oid_pairs(store, count, seed=seed)})

    def test_meet_general_identical(self, request):
        for store in _all_stores(request):
            steered, indexed = _backends(store)
            relations = group_by_pid(store, self._sample_oids(store, 40, seed=13))
            expected = {(m.oid, m.origins) for m in steered.meet_general(relations)}
            actual = {(m.oid, m.origins) for m in indexed.meet_general(relations)}
            assert actual == expected

    def test_meet_tagged_identical(self, request):
        for store in _all_stores(request):
            steered, indexed = _backends(store)
            oids = self._sample_oids(store, 40, seed=17)
            tagged = [
                (("alpha", "beta", "gamma")[i % 3], oid)
                for i, oid in enumerate(oids)
            ]
            assert set(indexed.meet_tagged(tagged)) == set(
                steered.meet_tagged(tagged)
            )

    def test_meet_sets_identical(self, request):
        for store in _all_stores(request):
            steered, indexed = _backends(store)
            counts = Counter(store.pid_of(oid) for oid in store.iter_oids())
            rich_pids = [pid for pid, n in counts.items() if n >= 3][:4]
            for left_pid in rich_pids:
                for right_pid in rich_pids:
                    left = store.oids_on_pid(left_pid)[:8]
                    right = store.oids_on_pid(right_pid)[:8]
                    assert set(indexed.meet_sets(left, right)) == set(
                        steered.meet_sets(left, right)
                    )

    def test_bitmask_rollup_matches_set_rollup(self, request):
        """The array/bitmask propagation equals the retained per-OID-set
        reference roll-up (and hence the steered walks) on every bundled
        dataset, including heavy multi-term workloads with shared OIDs."""
        for store in _all_stores(request):
            steered, indexed = _backends(store)
            oids = self._sample_oids(store, 120, seed=29)
            tagged = [("t%d" % (i % 5), oid) for i, oid in enumerate(oids)]
            # Same OID under several tokens exercises the "Bob Byte" case.
            tagged += [("t0", oid) for oid in oids[:10]]
            via_bitmask = indexed.meet_tagged(tagged)
            via_sets = indexed._meet_tagged_sets(tagged)
            via_steered = steered.meet_tagged(tagged)
            assert set(via_bitmask) == set(via_sets) == set(via_steered)
            # The two indexed roll-ups share the emission order too.
            assert via_bitmask == via_sets

    def test_meet_sets_rejects_mixed_input(self, figure1_store):
        _, indexed = _backends(figure1_store)
        counts = Counter(
            figure1_store.pid_of(oid) for oid in figure1_store.iter_oids()
        )
        (pid1, _), (pid2, _) = counts.most_common(2)
        mixed = figure1_store.oids_on_pid(pid1)[:1] + figure1_store.oids_on_pid(pid2)[:1]
        with pytest.raises(ModelError):
            indexed.meet_sets(mixed, figure1_store.oids_on_pid(pid1)[:1])


class TestGraphShortcut:
    def test_tree_only_graph_meet_matches_bfs(self, request):
        for store in _all_stores(request):
            _, indexed = _backends(store)
            for oid1, oid2 in random_oid_pairs(store, 40, seed=23):
                via_bfs = graph_meet(store, oid1, oid2)
                via_index = graph_meet(store, oid1, oid2, backend=indexed)
                assert via_index == via_bfs
                assert graph_distance(
                    store, oid1, oid2, backend=indexed
                ) == graph_distance(store, oid1, oid2)
                assert graph_shortest_path(
                    store, oid1, oid2, backend=indexed
                ) == graph_shortest_path(store, oid1, oid2)

    def test_max_distance_respected(self, figure1_store):
        _, indexed = _backends(figure1_store)
        for oid1, oid2 in random_oid_pairs(figure1_store, 30, seed=3):
            for bound in (0, 1, 4):
                assert graph_distance(
                    figure1_store, oid1, oid2, max_distance=bound, backend=indexed
                ) == graph_distance(figure1_store, oid1, oid2, max_distance=bound)


class TestEnginePipeline:
    QUERIES = [("Bit", "1999"), ("Hack", "1999"), ("Bob", "Byte")]

    def test_nearest_concepts_identical(self, figure1_store):
        steered_engine = NearestConceptEngine(figure1_store, backend="steered")
        indexed_engine = NearestConceptEngine(figure1_store, backend="indexed")
        for terms in self.QUERIES:
            assert indexed_engine.nearest_concepts(
                *terms
            ) == steered_engine.nearest_concepts(*terms)

    def test_nearest_concepts_identical_on_dblp(self, dblp_store):
        steered_engine = NearestConceptEngine(
            dblp_store, case_sensitive=True, backend="steered"
        )
        indexed_engine = NearestConceptEngine(
            dblp_store, case_sensitive=True, backend="indexed"
        )
        for terms in [("ICDE", "1999"), ("VLDB", "1995")]:
            assert indexed_engine.nearest_concepts(
                *terms, exclude_root=True
            ) == steered_engine.nearest_concepts(*terms, exclude_root=True)

    def test_ranking_order_identical_on_random_store(self, random_stores):
        """Answer sets *and* ranking order agree between backends on the
        deep random dataset — the serving bench's differential claim."""
        from repro.datasets.textpool import TECH_NOUNS

        store = random_stores[0]
        steered_engine = NearestConceptEngine(store, backend="steered")
        indexed_engine = NearestConceptEngine(store, backend="indexed")
        words = list(TECH_NOUNS)[:6]
        for terma in words[:3]:
            for termb in words[3:]:
                assert indexed_engine.nearest_concepts(
                    terma, termb
                ) == steered_engine.nearest_concepts(terma, termb)

    def test_batch_matches_single(self, figure1_store):
        engine = NearestConceptEngine(figure1_store, backend="indexed")
        batched = engine.nearest_concepts_batch(self.QUERIES, limit=5)
        assert batched == [
            engine.nearest_concepts(*terms, limit=5) for terms in self.QUERIES
        ]

    def test_engine_meet_many(self, figure1_store):
        steered_engine = NearestConceptEngine(figure1_store, backend="steered")
        indexed_engine = NearestConceptEngine(figure1_store, backend="indexed")
        pairs = random_oid_pairs(figure1_store, 50, seed=7)
        assert indexed_engine.meet_many(pairs) == steered_engine.meet_many(pairs)


class TestResolution:
    def test_names(self, figure1_store):
        assert set(BACKEND_NAMES) == {"steered", "indexed", "vector"}
        assert resolve_backend(figure1_store, None).name == "steered"
        assert resolve_backend(figure1_store, "steered").name == "steered"
        assert resolve_backend(figure1_store, "indexed").name == "indexed"
        # "vector" resolves to the vector backend when NumPy is
        # importable and silently degrades to indexed otherwise.
        assert resolve_backend(figure1_store, "vector").name in (
            "vector",
            "indexed",
        )

    def test_instance_passthrough(self, figure1_store):
        backend = IndexedBackend(figure1_store)
        assert resolve_backend(figure1_store, backend) is backend
        assert isinstance(backend, MeetBackend)

    def test_unknown_name(self, figure1_store):
        with pytest.raises(ValueError, match="unknown meet backend"):
            resolve_backend(figure1_store, "quantum")

    def test_foreign_store_rejected(self, figure1_store, dblp_store):
        backend = IndexedBackend(dblp_store)
        with pytest.raises(ValueError, match="different store"):
            resolve_backend(figure1_store, backend)


class TestIndexCache:
    def test_shared_and_invalidated(self, random_stores):
        store = random_stores[0]
        clear_lca_index_cache()
        try:
            first = get_lca_index(store)
            assert get_lca_index(store) is first
            store.invalidate_caches()
            rebuilt = get_lca_index(store)
            assert rebuilt is not first
            assert rebuilt.generation == store.generation
        finally:
            clear_lca_index_cache()
