"""Unit tests for distances, shortest paths and contexts (§3.1, §4)."""

import pytest

from repro.core.distance import (
    contexts,
    distance,
    document_distance,
    shortest_path,
)
from repro.datasets.figure1 import FIGURE1_OIDS as O


class TestDistance:
    def test_metric_identity(self, figure1_store):
        assert distance(figure1_store, O["year1"], O["year1"]) == 0

    def test_symmetry(self, figure1_store):
        pairs = [
            (O["cdata_ben"], O["cdata_bit"]),
            (O["article1"], O["cdata_1999_b"]),
        ]
        for oid1, oid2 in pairs:
            assert distance(figure1_store, oid1, oid2) == distance(
                figure1_store, oid2, oid1
            )

    def test_triangle_inequality_samples(self, figure1_store):
        triples = [
            (O["cdata_ben"], O["cdata_bit"], O["cdata_1999_a"]),
            (O["article1"], O["article2"], O["institute"]),
        ]
        for a, b, c in triples:
            assert distance(figure1_store, a, c) <= distance(
                figure1_store, a, b
            ) + distance(figure1_store, b, c)

    def test_known_values(self, figure1_store):
        assert distance(figure1_store, O["cdata_ben"], O["cdata_bit"]) == 4
        assert distance(figure1_store, O["author1"], O["article1"]) == 1
        assert distance(figure1_store, O["cdata_ben"], O["cdata_bob_byte"]) == 7


class TestDocumentDistance:
    def test_oid_difference(self, figure1_store):
        assert document_distance(figure1_store, 3, 13) == 10
        assert document_distance(figure1_store, 13, 3) == 10

    def test_outside_store_rejected(self, figure1_store):
        with pytest.raises(ValueError):
            document_distance(figure1_store, 1, 999)


class TestShortestPath:
    def test_endpoints_and_length(self, figure1_store):
        path = shortest_path(figure1_store, O["cdata_ben"], O["cdata_bit"])
        assert path[0] == O["cdata_ben"]
        assert path[-1] == O["cdata_bit"]
        assert len(path) == distance(figure1_store, O["cdata_ben"], O["cdata_bit"]) + 1

    def test_passes_through_meet(self, figure1_store):
        path = shortest_path(figure1_store, O["cdata_ben"], O["cdata_bit"])
        assert O["author1"] in path

    def test_path_edges_are_tree_edges(self, figure1_store):
        path = shortest_path(figure1_store, O["cdata_ben"], O["cdata_1999_b"])
        for left, right in zip(path, path[1:]):
            assert figure1_store.parent_of(left) == right or (
                figure1_store.parent_of(right) == left
            )

    def test_degenerate_path(self, figure1_store):
        assert shortest_path(figure1_store, O["year1"], O["year1"]) == [O["year1"]]

    def test_ancestor_path_is_straight(self, figure1_store):
        path = shortest_path(figure1_store, O["cdata_ben"], O["article1"])
        assert path == [
            O["cdata_ben"],
            O["firstname"],
            O["author1"],
            O["article1"],
        ]


class TestContexts:
    def test_bullet_list_semantics(self, figure1_store):
        """§3.1: the relative paths describe the two contexts."""
        ctx = contexts(figure1_store, O["cdata_bit"], O["cdata_1999_a"])
        assert ctx.meet_oid == O["article1"]
        assert str(ctx.meet_path) == "bibliography/institute/article"
        assert str(ctx.left_context) == "author/lastname/cdata"
        assert str(ctx.right_context) == "year/cdata"
        assert ctx.distance == 5

    def test_describe_mentions_concept(self, figure1_store):
        ctx = contexts(figure1_store, O["cdata_bit"], O["cdata_1999_a"])
        text = ctx.describe()
        assert "article" in text and "distance 5" in text

    def test_context_of_self_meet(self, figure1_store):
        ctx = contexts(figure1_store, O["year1"], O["year1"])
        assert ctx.left_context.is_empty()
        assert ctx.right_context.is_empty()
        assert ctx.distance == 0
