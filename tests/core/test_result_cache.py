"""Unit tests for the serving layer's generation-keyed LRU result cache."""

import pytest

from repro.core.result_cache import (
    DEFAULT_MAXSIZE,
    ResultCache,
    resolve_result_cache,
)


class TestLru:
    def test_get_miss_then_hit(self):
        cache = ResultCache(maxsize=4)
        assert cache.get("k") is None
        cache.put("k", (1, 2))
        assert cache.get("k") == (1, 2)
        info = cache.cache_info()
        assert (info.hits, info.misses, info.currsize) == (1, 1, 1)

    def test_eviction_is_least_recently_used(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.cache_info().evictions == 1

    def test_put_existing_key_updates_without_eviction(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.cache_info().evictions == 0

    def test_clear_keeps_counters(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        info = cache.cache_info()
        assert info.currsize == 0
        assert info.hits == 1

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            ResultCache(maxsize=0)


class TestGenerationSync:
    def test_generation_change_drops_entries(self):
        cache = ResultCache(maxsize=8)
        cache.sync_generation(1)
        cache.put(("g1", "q"), "answer")
        cache.sync_generation(1)  # no change: entry survives
        assert len(cache) == 1
        cache.sync_generation(2)  # store invalidated: entries dropped
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = ResultCache(maxsize=2)
        assert cache.cache_info().hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        assert cache.cache_info().hit_rate == pytest.approx(0.5)


class TestResolve:
    def test_off_specs(self):
        assert resolve_result_cache(None) is None
        assert resolve_result_cache(False) is None

    def test_true_uses_default_capacity(self):
        cache = resolve_result_cache(True)
        assert cache.maxsize == DEFAULT_MAXSIZE

    def test_int_is_capacity(self):
        assert resolve_result_cache(17).maxsize == 17

    def test_instance_passthrough(self):
        cache = ResultCache(maxsize=3)
        assert resolve_result_cache(cache) is cache


class TestLayoutFingerprintKeys:
    """The sharded serving path keys entries on the *layout* — shard
    plan fingerprint plus per-shard generations — so a mutation that
    re-shards the collection must drop every cached answer by itself.
    """

    def test_tuple_layout_keys_sync(self):
        cache = ResultCache(maxsize=8)
        layout_v1 = (("starts", (1, 10)), (3, 3))
        cache.sync_generation(layout_v1)
        cache.put((layout_v1, "q"), "answer")
        cache.sync_generation(layout_v1)  # identical layout: survives
        assert len(cache) == 1
        # Same plan, bumped shard generations — a mutation re-shard.
        layout_v2 = (("starts", (1, 10)), (4, 4))
        cache.sync_generation(layout_v2)
        assert len(cache) == 0

    def test_mutation_and_reshard_cycle_never_serves_stale(self, tmp_path):
        """End-to-end: cached sharded answers die with each mutation."""
        from repro.api import Database, DatabaseOptions, NearestRequest
        from repro.datamodel.serializer import serialize
        from repro.datasets import figure1_document

        source = tmp_path / "figure1.xml"
        source.write_text(serialize(figure1_document()), encoding="utf-8")
        db = Database.open(
            str(source),
            options=DatabaseOptions(shards=2, cache=32, backend="indexed"),
        )
        try:
            request = NearestRequest(terms=("Bit", "1999"), limit=10)
            before = db.nearest(request).answers
            repeat = db.nearest(request).answers
            assert repeat == before
            assert db.cache_info().hits >= 1  # second ask was served cached

            fragment = "<book><title>Bit</title><year>1999</year></book>"
            db.put("memo", fragment)
            after = db.nearest(request).answers
            assert after != before, "mutation must invalidate cached answers"
            assert any(a["tag"] == "book" for a in after)

            # The cycle again through compaction (fresh layout key).
            db.compact()
            assert db.nearest(request).answers == after
            db.delete("memo")
            assert db.nearest(request).answers == before
        finally:
            db.close()

    def test_monolithic_generation_bump_invalidates(self, tmp_path):
        """The unsharded path keys on store generation: same contract."""
        from repro.api import Database, DatabaseOptions, NearestRequest
        from repro.datamodel.serializer import serialize
        from repro.datasets import figure1_document

        source = tmp_path / "figure1.xml"
        source.write_text(serialize(figure1_document()), encoding="utf-8")
        db = Database.open(
            str(source), options=DatabaseOptions(cache=32, backend="indexed")
        )
        try:
            request = NearestRequest(terms=("Bit", "1999"), limit=10)
            before = db.nearest(request).answers
            db.nearest(request)
            assert db.cache_info().hits >= 1
            db.put(
                "memo", "<book><title>Bit</title><year>1999</year></book>"
            )
            after = db.nearest(request).answers
            assert after != before
        finally:
            db.close()


class TestThreadSafety:
    def test_eight_thread_hammer(self):
        """One cache, 8 threads, mixed get/put/sync: counters stay exact.

        The cache backs the multi-threaded HTTP server, so concurrent
        access must neither corrupt the LRU order (KeyError /
        RuntimeError from a racing OrderedDict) nor lose counter
        updates: with the lock, hits + misses equals the total number
        of get() calls exactly.
        """
        import threading

        cache = ResultCache(maxsize=32)
        cache.sync_generation(1)
        gets_per_thread = 2_000
        errors = []

        def hammer(seed: int) -> None:
            try:
                for i in range(gets_per_thread):
                    key = (seed * i) % 48  # some keys shared, some evicted
                    if cache.get(key) is None:
                        cache.put(key, (key, seed))
                    if i % 500 == 0:
                        cache.sync_generation(1)  # no-op sync under load
                    len(cache)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        info = cache.cache_info()
        assert info.hits + info.misses == 8 * gets_per_thread
        assert info.currsize <= 32
