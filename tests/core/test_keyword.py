"""Unit tests for keyword search as a meet special case (§6)."""

import pytest

from repro.core.keyword import keyword_search
from repro.datamodel.paths import Path
from repro.datasets.figure1 import FIGURE1_OIDS as O


class TestResultTyping:
    def test_search_by_tag(self, figure1_engine):
        hits = keyword_search(figure1_engine, ["Bit", "1999"], ["article"])
        assert [h.oid for h in hits] == [O["article1"]]
        assert hits[0].tag == "article"

    def test_search_by_path(self, figure1_engine):
        hits = keyword_search(
            figure1_engine,
            ["Bit", "1999"],
            [Path.parse("bibliography/institute/article")],
        )
        assert [h.oid for h in hits] == [O["article1"]]

    def test_search_by_path_string(self, figure1_engine):
        hits = keyword_search(
            figure1_engine, ["Bit", "1999"], ["bibliography/institute/article"]
        )
        assert [h.oid for h in hits] == [O["article1"]]

    def test_unknown_type_empty(self, figure1_engine):
        assert keyword_search(figure1_engine, ["Bit", "1999"], ["zebra"]) == []
        assert keyword_search(figure1_engine, ["Bit", "1999"], []) == []


class TestContainerLifting:
    def test_deep_meet_lifts_to_enclosing_type(self, figure1_engine):
        """Ben+Bit meet at the author node; asking for articles lifts
        the hit to the enclosing article instance."""
        hits = keyword_search(figure1_engine, ["Ben", "Bit"], ["article"])
        assert [h.oid for h in hits] == [O["article1"]]

    def test_meet_above_type_not_reported(self, figure1_engine):
        """How+RSI meet at the institute — *above* any article — so an
        article-typed search must not fabricate an answer."""
        hits = keyword_search(figure1_engine, ["How", "RSI"], ["article"])
        assert hits == []

    def test_duplicate_containers_collapse(self, figure1_engine):
        """Multiple meets inside one article yield one hit."""
        hits = keyword_search(
            figure1_engine, ["Ben", "Bit", "1999"], ["article"],
            require_all_terms=False,
        )
        assert [h.oid for h in hits] == [O["article1"]]


class TestOptions:
    def test_require_all_terms_default(self, figure1_engine):
        strict = keyword_search(
            figure1_engine, ["Bit", "Byte"], ["article"]
        )
        # no single article contains both surnames
        assert strict == []
        loose = keyword_search(
            figure1_engine, ["Bit", "Byte"], ["article"],
            require_all_terms=False,
        )
        assert loose == []  # their meet is the institute, above articles

    def test_limit(self, figure1_engine):
        hits = keyword_search(
            figure1_engine,
            ["Hack", "1999"],
            ["article"],
            require_all_terms=False,
            limit=1,
        )
        assert len(hits) <= 1

    def test_hits_carry_terms_and_joins(self, figure1_engine):
        (hit,) = keyword_search(figure1_engine, ["Bit", "1999"], ["article"])
        assert set(hit.terms) == {"Bit", "1999"}
        assert hit.joins == 5


class TestDblp:
    def test_publications_by_keyword(self, dblp_engine):
        hits = keyword_search(
            dblp_engine, ["ICDE", "1995"], ["inproceedings"]
        )
        assert hits
        assert all(h.tag == "inproceedings" for h in hits)
