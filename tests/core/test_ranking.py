"""Unit tests for the §4 ranking heuristics."""

from repro.core.meet_general import GeneralMeet, group_by_pid, meet_general
from repro.core.ranking import join_count, origin_spread, rank_meets
from repro.datasets.figure1 import FIGURE1_OIDS as O


def meet_of(figure1_store, oids):
    relations = group_by_pid(figure1_store, oids)
    meets = meet_general(figure1_store, relations)
    assert len(meets) == 1
    return meets[0]


class TestFeatures:
    def test_join_count_equals_depth_sum(self, figure1_store):
        meet = meet_of(figure1_store, [O["cdata_bit"], O["cdata_1999_a"]])
        # article at depth 3; origins at depth 6 and 5 → 3 + 2 joins.
        assert join_count(figure1_store, meet) == 5

    def test_join_count_zero_for_self_cover(self, figure1_store):
        meet = GeneralMeet(
            oid=O["author1"], origins=frozenset({O["author1"], O["cdata_ben"]})
        )
        # author covers itself (0) and cdata_ben (2 levels below).
        assert join_count(figure1_store, meet) == 2

    def test_origin_spread(self, figure1_store):
        meet = meet_of(figure1_store, [O["cdata_bit"], O["cdata_1999_a"]])
        assert origin_spread(meet) == O["cdata_1999_a"] - O["cdata_bit"]


class TestRanking:
    def test_tighter_meet_ranks_first(self, figure1_store):
        tight = meet_of(figure1_store, [O["cdata_ben"], O["cdata_bit"]])
        loose = meet_of(figure1_store, [O["cdata_ben"], O["cdata_1999_b"]])
        ranked = rank_meets(figure1_store, [loose, tight])
        assert ranked[0].oid == tight.oid
        assert ranked[0].joins < ranked[1].joins

    def test_rank_is_deterministic(self, figure1_store):
        meets = [
            meet_of(figure1_store, [O["cdata_ben"], O["cdata_bit"]]),
            meet_of(figure1_store, [O["cdata_bit"], O["cdata_1999_a"]]),
            meet_of(figure1_store, [O["cdata_1999_a"], O["cdata_1999_b"]]),
        ]
        first = [r.oid for r in rank_meets(figure1_store, meets)]
        second = [r.oid for r in rank_meets(figure1_store, list(reversed(meets)))]
        assert first == second

    def test_ranked_meet_carries_features(self, figure1_store):
        meet = meet_of(figure1_store, [O["cdata_bit"], O["cdata_1999_a"]])
        (ranked,) = rank_meets(figure1_store, [meet])
        assert ranked.path == figure1_store.path_of(meet.oid)
        assert ranked.depth == 3
        assert ranked.origins == tuple(sorted(meet.origins))

    def test_empty_input(self, figure1_store):
        assert rank_meets(figure1_store, []) == []
