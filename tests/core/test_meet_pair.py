"""Unit tests for meet₂ (Fig. 3): correctness and steering behaviour."""

import pytest

from repro.core.meet_pair import meet2, meet2_traced
from repro.datasets.figure1 import FIGURE1_OIDS as O
from repro.datasets.randomtree import random_document, random_oid_pairs
from repro.monet.transform import monet_transform


class TestBasicCases:
    def test_identity(self, figure1_store):
        assert meet2(figure1_store, O["year1"], O["year1"]) == O["year1"]

    def test_parent_child(self, figure1_store):
        assert meet2(figure1_store, O["article1"], O["author1"]) == O["article1"]

    def test_siblings(self, figure1_store):
        assert meet2(figure1_store, O["author1"], O["title1"]) == O["article1"]

    def test_symmetric(self, figure1_store):
        """Def. 6: meet₂ does not depend on argument order."""
        for left, right in [
            (O["cdata_ben"], O["cdata_1999_b"]),
            (O["firstname"], O["title2"]),
            (O["bibliography"], O["cdata_bit"]),
        ]:
            assert meet2(figure1_store, left, right) == meet2(
                figure1_store, right, left
            )

    def test_root_with_anything_is_root(self, figure1_store):
        root = figure1_store.root_oid
        assert meet2(figure1_store, root, O["cdata_bit"]) == root

    def test_cross_article_meet(self, figure1_store):
        assert meet2(figure1_store, O["cdata_ben"], O["cdata_bob_byte"]) == (
            O["institute"]
        )


class TestDefinitionSix:
    """The result satisfies all three clauses of Def. 6."""

    def test_result_is_common_ancestor_and_lowest(self, figure1_store):
        pairs = [
            (O["cdata_ben"], O["cdata_bit"]),
            (O["cdata_ben"], O["cdata_1999_b"]),
            (O["year1"], O["year2"]),
        ]
        for oid1, oid2 in pairs:
            meet = meet2(figure1_store, oid1, oid2)
            assert figure1_store.is_ancestor(meet, oid1)
            assert figure1_store.is_ancestor(meet, oid2)
            # no child of the meet is also a common ancestor
            for child in figure1_store.children_of(meet):
                assert not (
                    figure1_store.is_ancestor(child, oid1)
                    and figure1_store.is_ancestor(child, oid2)
                )


class TestJoinCounts:
    def test_joins_equal_tree_distance(self, figure1_store):
        result = meet2_traced(figure1_store, O["cdata_ben"], O["cdata_bit"])
        assert result.joins == result.distance == 4

    def test_ancestor_descendant_distance(self, figure1_store):
        result = meet2_traced(figure1_store, O["institute"], O["cdata_ben"])
        assert result.joins == figure1_store.depth_of(O["cdata_ben"]) - (
            figure1_store.depth_of(O["institute"])
        )

    def test_steering_never_overshoots(self, figure1_store):
        """Join count is exactly depth₁ + depth₂ − 2·depth(meet)."""
        for oid1 in figure1_store.iter_oids():
            for oid2 in list(figure1_store.iter_oids())[::3]:
                result = meet2_traced(figure1_store, oid1, oid2)
                expected = (
                    figure1_store.depth_of(oid1)
                    + figure1_store.depth_of(oid2)
                    - 2 * figure1_store.depth_of(result.oid)
                )
                assert result.joins == expected


class TestAgainstOracle:
    def test_random_documents_vs_naive(self):
        from repro.baselines.naive_lca import naive_lca

        for seed in (1, 2, 3):
            store = monet_transform(random_document(seed, nodes=150))
            for oid1, oid2 in random_oid_pairs(store, 60, seed=seed):
                assert meet2(store, oid1, oid2) == naive_lca(store, oid1, oid2)

    def test_deep_skewed_document(self):
        """A deep chain plus a bushy sibling exercises the steering."""
        from repro.datamodel.builder import DocumentBuilder

        builder = DocumentBuilder("r")
        for _ in range(30):
            builder.down("deep")
        builder.up(30)
        builder.down("wide")
        for index in range(10):
            builder.leaf(f"leaf{index}")
        doc = builder.build()
        store = monet_transform(doc)
        deep_tip = 30  # 30 levels below root at oid 0
        wide_leaf = 35
        result = meet2_traced(store, deep_tip, wide_leaf)
        assert result.oid == 0
        assert result.joins == 30 + 2
