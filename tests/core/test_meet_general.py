"""Unit tests for the general meet (Fig. 5) and its variants."""

import pytest

from repro.core.meet_general import (
    group_by_pid,
    meet_depthwise,
    meet_general,
    meet_tagged,
)
from repro.datasets.figure1 import FIGURE1_OIDS as O
from repro.datasets.randomtree import random_document
from repro.monet.transform import monet_transform


def as_relations(store, oids):
    return group_by_pid(store, oids)


class TestBasics:
    def test_empty_input(self, figure1_store):
        assert meet_general(figure1_store, {}) == []

    def test_single_node_no_meet(self, figure1_store):
        relations = as_relations(figure1_store, [O["cdata_bit"]])
        assert meet_general(figure1_store, relations) == []

    def test_duplicate_oids_collapse(self, figure1_store):
        """Fig. 5 inputs are sets: the same OID twice is one input."""
        relations = {0: [O["cdata_bit"]], 1: [O["cdata_bit"]]}
        assert meet_general(figure1_store, relations) == []

    def test_two_distinct_inputs_meet(self, figure1_store):
        relations = as_relations(
            figure1_store, [O["cdata_bit"], O["cdata_1999_a"]]
        )
        meets = meet_general(figure1_store, relations)
        assert [(m.oid, set(m.origins)) for m in meets] == [
            (O["article1"], {O["cdata_bit"], O["cdata_1999_a"]})
        ]


class TestMinimality:
    def test_three_inputs_two_meets(self, figure1_store):
        """Bit + both 1999s: the article meet retires two inputs; the
        leftover 1999 has no partner, so no institute answer appears —
        the §3.1 "counter-intuitive" result is filtered."""
        relations = as_relations(
            figure1_store,
            [O["cdata_bit"], O["cdata_1999_a"], O["cdata_1999_b"]],
        )
        meets = meet_general(figure1_store, relations)
        assert [(m.oid, set(m.origins)) for m in meets] == [
            (O["article1"], {O["cdata_bit"], O["cdata_1999_a"]})
        ]

    def test_four_inputs_two_articles(self, figure1_store):
        relations = as_relations(
            figure1_store,
            [
                O["cdata_how_to_hack"],
                O["cdata_hacking_rsi"],
                O["cdata_1999_a"],
                O["cdata_1999_b"],
            ],
        )
        meets = meet_general(figure1_store, relations)
        assert sorted(m.oid for m in meets) == [O["article1"], O["article2"]]

    def test_input_that_is_ancestor_of_another(self, figure1_store):
        """An input node that dominates another input is their meet."""
        relations = as_relations(
            figure1_store, [O["author1"], O["cdata_ben"]]
        )
        meets = meet_general(figure1_store, relations)
        assert [(m.oid, set(m.origins)) for m in meets] == [
            (O["author1"], {O["author1"], O["cdata_ben"]})
        ]

    def test_meet_covers_at_least_two(self, figure1_store):
        relations = as_relations(
            figure1_store,
            [O["cdata_ben"], O["cdata_bit"], O["cdata_1999_b"]],
        )
        for meet in meet_general(figure1_store, relations):
            assert len(meet.origins) >= 2


class TestOrderInvariance:
    def test_shuffled_relations_same_meets(self, figure1_store):
        oids = [
            O["cdata_ben"],
            O["cdata_bit"],
            O["cdata_1999_a"],
            O["cdata_1999_b"],
            O["cdata_how_to_hack"],
        ]
        base = {
            (m.oid, m.origins)
            for m in meet_general(figure1_store, as_relations(figure1_store, oids))
        }
        for step in (2, 3):
            shuffled = oids[step:] + oids[:step]
            again = {
                (m.oid, m.origins)
                for m in meet_general(
                    figure1_store, as_relations(figure1_store, shuffled)
                )
            }
            assert again == base


class TestDepthwiseEquivalence:
    def test_figure1_all_cdata(self, figure1_store):
        oids = [
            oid
            for oid in figure1_store.iter_oids()
            if figure1_store.summary.label(figure1_store.pid_of(oid)) == "cdata"
        ]
        relations = as_relations(figure1_store, oids)
        schema = {(m.oid, m.origins) for m in meet_general(figure1_store, relations)}
        depthwise = {
            (m.oid, m.origins) for m in meet_depthwise(figure1_store, relations)
        }
        assert schema == depthwise

    def test_random_documents(self):
        for seed in (11, 12):
            store = monet_transform(random_document(seed, nodes=250))
            oids = [oid for oid in store.iter_oids() if oid % 3 == 0]
            relations = as_relations(store, oids)
            schema = {(m.oid, m.origins) for m in meet_general(store, relations)}
            depthwise = {
                (m.oid, m.origins) for m in meet_depthwise(store, relations)
            }
            assert schema == depthwise


class TestTagged:
    def test_same_oid_two_tags_is_meet(self, figure1_store):
        """The Bob/Byte behaviour at set scale."""
        tagged = [("Bob", O["cdata_bob_byte"]), ("Byte", O["cdata_bob_byte"])]
        meets = meet_tagged(figure1_store, tagged)
        assert [m.oid for m in meets] == [O["cdata_bob_byte"]]
        assert meets[0].tags == {"Bob", "Byte"}

    def test_same_oid_same_tag_not_a_meet(self, figure1_store):
        tagged = [("t", O["cdata_bob_byte"]), ("t", O["cdata_bob_byte"])]
        assert meet_tagged(figure1_store, tagged) == []

    def test_tags_and_origins_accessors(self, figure1_store):
        tagged = [("a", O["cdata_bit"]), ("b", O["cdata_1999_a"])]
        (meet,) = meet_tagged(figure1_store, tagged)
        assert meet.origins == {O["cdata_bit"], O["cdata_1999_a"]}
        assert meet.tags == {"a", "b"}

    def test_plain_equivalence_when_tags_are_oids(self, figure1_store):
        oids = [O["cdata_ben"], O["cdata_bit"], O["cdata_1999_a"]]
        tagged = [(oid, oid) for oid in oids]
        via_tagged = {
            (m.oid, m.origins) for m in meet_tagged(figure1_store, tagged)
        }
        via_general = {
            (m.oid, m.origins)
            for m in meet_general(figure1_store, as_relations(figure1_store, oids))
        }
        assert via_tagged == via_general


class TestAttributePidTolerance:
    def test_attribute_keyed_inputs_rekeyed(self, figure1_store):
        """Inputs arriving under arbitrary relation keys are re-keyed
        to the node's own pid before the roll-up."""
        relations = {999: [O["cdata_bit"]], 998: [O["cdata_1999_a"]]}
        meets = meet_general(figure1_store, relations)
        assert [m.oid for m in meets] == [O["article1"]]
