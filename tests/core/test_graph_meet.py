"""Unit tests for the IDREF graph-meet extension (§7 future work)."""

import pytest

from repro.core.graph_meet import (
    ReferenceIndex,
    graph_distance,
    graph_meet,
    graph_shortest_path,
)
from repro.core.meet_pair import meet2_traced
from repro.datamodel.parser import parse_document
from repro.monet import monet_transform

LINKED = """
<library>
  <authors>
    <person id="p1"><name>Ben Bit</name></person>
    <person id="p2"><name>Bob Byte</name></person>
  </authors>
  <books>
    <book id="b1" ref="p1"><title>How to Hack</title></book>
    <book id="b2" ref="p2"><title>Hacking and RSI</title></book>
    <book id="b3" ref="p1 p2"><title>Joint Work</title></book>
  </books>
  <orphan ref="nosuch"/>
</library>
"""


@pytest.fixture(scope="module")
def linked_store():
    return monet_transform(parse_document(LINKED, first_oid=0))


@pytest.fixture(scope="module")
def refs(linked_store):
    return ReferenceIndex(linked_store)


def oid_of(store, identifier, refs):
    target = refs.resolve(identifier)
    assert target is not None
    return target


class TestReferenceIndex:
    def test_ids_resolved(self, linked_store, refs):
        assert refs.id_count == 5  # p1 p2 b1 b2 b3
        for identifier in ("p1", "p2", "b1", "b2", "b3"):
            assert refs.resolve(identifier) is not None
        assert refs.resolve("nosuch") is None

    def test_edges_undirected(self, linked_store, refs):
        p1 = refs.resolve("p1")
        b1 = refs.resolve("b1")
        assert p1 in refs.neighbours(b1)
        assert b1 in refs.neighbours(p1)

    def test_multivalued_idrefs(self, linked_store, refs):
        b3 = refs.resolve("b3")
        assert set(refs.neighbours(b3)) == {refs.resolve("p1"), refs.resolve("p2")}

    def test_edge_count(self, refs):
        assert refs.edge_count == 4  # b1-p1, b2-p2, b3-p1, b3-p2

    def test_dangling_reported(self, refs):
        assert len(refs.dangling) == 1
        _oid, token = refs.dangling[0]
        assert token == "nosuch"

    def test_custom_attribute_names(self, linked_store):
        index = ReferenceIndex(
            linked_store, id_attributes=("id",), ref_attributes=()
        )
        assert index.edge_count == 0
        assert index.id_count == 5


class TestGraphSearch:
    def test_tree_only_path_matches_meet2(self, linked_store):
        """Without references the shortest path is the tree path."""
        oids = list(linked_store.iter_oids())
        for oid1 in oids[::4]:
            for oid2 in oids[::5]:
                tree = meet2_traced(linked_store, oid1, oid2)
                assert graph_distance(linked_store, oid1, oid2) == tree.joins

    def test_reference_shortcut(self, linked_store, refs):
        """book b1 ↔ person p1 are 1 apart via the reference, 4 via
        the tree (book→books→library→authors→person)."""
        b1, p1 = refs.resolve("b1"), refs.resolve("p1")
        assert graph_distance(linked_store, b1, p1) == 4  # tree route
        assert graph_distance(linked_store, b1, p1, refs) == 1

    def test_shortest_path_endpoints(self, linked_store, refs):
        b1, p2 = refs.resolve("b1"), refs.resolve("p2")
        path = graph_shortest_path(linked_store, b1, p2, refs)
        assert path is not None
        assert path[0] == b1 and path[-1] == p2

    def test_max_distance_cutoff(self, linked_store, refs):
        b1, p1 = refs.resolve("b1"), refs.resolve("p1")
        assert graph_distance(linked_store, b1, p1, refs, max_distance=0) is None
        assert graph_distance(linked_store, b1, p1, refs, max_distance=1) == 1

    def test_identity(self, linked_store, refs):
        b1 = refs.resolve("b1")
        assert graph_shortest_path(linked_store, b1, b1, refs) == [b1]


class TestGraphMeet:
    def test_conservative_extension_on_trees(self, figure1_store):
        """With no references, graph_meet ≡ meet₂ (same apex, same
        distance) on every sampled pair."""
        oids = list(figure1_store.iter_oids())
        for oid1 in oids[::3]:
            for oid2 in oids[::4]:
                tree = meet2_traced(figure1_store, oid1, oid2)
                graph = graph_meet(figure1_store, oid1, oid2)
                assert graph is not None
                assert graph.oid == tree.oid
                assert graph.distance == tree.joins
                assert not graph.crosses_reference

    def test_meet_across_reference(self, linked_store, refs):
        """The cdata of the book title and the cdata of the author name
        relate through the reference — the apex is the book."""
        summary = linked_store.summary
        def first_on(label):
            for oid in linked_store.iter_oids():
                if summary.label(linked_store.pid_of(oid)) == label:
                    return oid
            raise AssertionError(label)

        b1 = refs.resolve("b1")
        p1 = refs.resolve("p1")
        result = graph_meet(linked_store, b1, p1, refs)
        assert result is not None
        assert result.crosses_reference
        assert result.via_references == 1
        assert result.distance == 1
        # apex = shallowest node of [b1, p1]; both at same depth → b1
        assert result.oid in (b1, p1)

    def test_apex_is_min_depth_node(self, linked_store, refs):
        title_cdata = None
        name_cdata = None
        for oid in linked_store.iter_oids():
            path = str(linked_store.path_of(oid))
            if path.endswith("book/title/cdata") and title_cdata is None:
                title_cdata = oid
            if path.endswith("person/name/cdata") and name_cdata is None:
                name_cdata = oid
        assert title_cdata is not None and name_cdata is not None
        result = graph_meet(linked_store, title_cdata, name_cdata, refs)
        assert result is not None
        min_depth = min(linked_store.depth_of(oid) for oid in result.path)
        assert linked_store.depth_of(result.oid) == min_depth

    def test_unreachable_with_bound(self, linked_store, refs):
        b1, p2 = refs.resolve("b1"), refs.resolve("p2")
        assert graph_meet(linked_store, b1, p2, refs, max_distance=1) is None


class TestCycles:
    def test_cyclic_references_terminate(self):
        """a→b→c→a reference cycle: BFS must not loop."""
        xml = """
        <r>
          <x id="a" ref="b"><t>one</t></x>
          <x id="b" ref="c"><t>two</t></x>
          <x id="c" ref="a"><t>three</t></x>
        </r>
        """
        store = monet_transform(parse_document(xml))
        refs = ReferenceIndex(store)
        a, c = refs.resolve("a"), refs.resolve("c")
        assert graph_distance(store, a, c, refs) == 1  # direct c→a edge
        result = graph_meet(store, a, c, refs)
        assert result is not None and result.distance == 1
