"""Unit tests for the IR-flavoured ranking extension (§4 outlook)."""

import pytest

from repro.core.ranking_ir import IRRanker, IRWeights
from repro.datasets.figure1 import FIGURE1_OIDS as O


@pytest.fixture(scope="module")
def ranker(request):
    engine = request.getfixturevalue("figure1_engine")
    return IRRanker(engine.index)


class TestIdf:
    def test_rare_term_scores_higher(self, ranker):
        # 'Ben' appears once, '1999' twice
        assert ranker.idf("Ben") > ranker.idf("1999")

    def test_unseen_term_zero(self, ranker):
        assert ranker.idf("unicorn") == 0.0

    def test_case_folding_follows_index(self, ranker):
        assert ranker.idf("ben") == ranker.idf("BEN")


class TestSignals:
    def test_tightness_decays_with_joins(self, ranker):
        assert ranker._tightness(0) == 1.0
        assert ranker._tightness(6) == pytest.approx(0.5)
        assert ranker._tightness(12) < ranker._tightness(6)

    def test_locality_decays_with_spread(self, ranker):
        assert ranker._locality(0) == 1.0
        assert ranker._locality(64) == pytest.approx(0.5)


class TestRanking:
    def test_scored_concepts_sorted(self, figure1_engine, ranker):
        concepts = figure1_engine.nearest_concepts(
            "Hack", "1999", require_all_terms=False
        )
        scored = ranker.rank(concepts)
        values = [s.score for s in scored]
        assert values == sorted(values, reverse=True)

    def test_tight_concept_beats_loose_at_equal_idf(self, figure1_engine, ranker):
        tight = figure1_engine.nearest_concepts("Bob", "Byte")[0]  # joins 0
        loose = figure1_engine.nearest_concepts("Ben", "1999")[0]  # joins 5
        scored = ranker.rank([loose, tight])
        assert scored[0].concept.oid == tight.oid

    def test_components_exposed(self, figure1_engine, ranker):
        (concept,) = figure1_engine.nearest_concepts("Bit", "1999")
        scored = ranker.score(concept)
        assert scored.idf_score > 0
        assert 0 < scored.tightness <= 1
        assert 0 < scored.locality <= 1
        assert scored.score == pytest.approx(
            ranker.weights.idf * scored.idf_score
            + ranker.weights.tightness * scored.tightness
            + ranker.weights.locality * scored.locality
        )

    def test_uniform_idf_matches_join_order(self, figure1_engine):
        """With idf switched off, IR ranking degenerates to the §4
        join-count order (same winner as NearestConcept.sort_key)."""
        ranker = IRRanker(
            figure1_engine.index,
            IRWeights(idf=0.0, tightness=1.0, locality=0.0),
        )
        concepts = figure1_engine.nearest_concepts(
            "Hack", "1999", require_all_terms=False
        )
        if len(concepts) >= 2:
            scored = ranker.rank(concepts)
            joins = [s.concept.joins for s in scored]
            assert joins == sorted(joins)

    def test_deterministic_tie_break(self, figure1_engine, ranker):
        concepts = figure1_engine.nearest_concepts(
            "Hack", "1999", require_all_terms=False
        )
        once = [s.concept.oid for s in ranker.rank(concepts)]
        again = [s.concept.oid for s in ranker.rank(list(reversed(concepts)))]
        assert once == again
