"""Unit tests for the MonetXML store API."""

import pytest

from repro.datamodel.errors import ModelError, UnknownOIDError
from repro.datamodel.paths import Path
from repro.datasets.figure1 import FIGURE1_OIDS as O


class TestLookups:
    def test_pid_path_consistency(self, figure1_store):
        for oid in figure1_store.iter_oids():
            pid = figure1_store.pid_of(oid)
            assert figure1_store.summary.path(pid) == figure1_store.path_of(oid)

    def test_unknown_oid(self, figure1_store):
        with pytest.raises(UnknownOIDError):
            figure1_store.pid_of(999)
        with pytest.raises(UnknownOIDError):
            figure1_store.parent_of(0)  # first_oid is 1

    def test_contains(self, figure1_store):
        assert O["article1"] in figure1_store
        assert 0 not in figure1_store
        assert "x" not in figure1_store

    def test_depth(self, figure1_store):
        assert figure1_store.depth_of(O["bibliography"]) == 1
        assert figure1_store.depth_of(O["cdata_ben"]) == 6


class TestRelations:
    def test_edge_relation_empty_for_attribute_pid(self, figure1_store):
        pid = figure1_store.summary.pid(
            Path.parse("bibliography/institute/article@key")
        )
        assert figure1_store.edge_relation(pid).count() == 0
        assert figure1_store.string_relation(pid).count() == 2

    def test_parent_relation_is_reverse(self, figure1_store):
        pid = figure1_store.summary.pid(
            Path.parse("bibliography/institute/article")
        )
        parents = figure1_store.parent_relation(pid)
        assert parents.find(O["article1"]) == O["institute"]

    def test_parent_relation_cached(self, figure1_store):
        pid = figure1_store.summary.pid(
            Path.parse("bibliography/institute/article")
        )
        assert figure1_store.parent_relation(pid) is figure1_store.parent_relation(pid)

    def test_string_relations_iteration(self, figure1_store):
        names = {
            str(figure1_store.summary.path(pid))
            for pid, _ in figure1_store.string_relations()
        }
        assert "bibliography/institute/article@key" in names


class TestNodeSets:
    def test_oids_on_pid(self, figure1_store):
        pid = figure1_store.summary.pid(
            Path.parse("bibliography/institute/article")
        )
        assert figure1_store.oids_on_pid(pid) == [O["article1"], O["article2"]]

    def test_oids_on_root_pid(self, figure1_store):
        pid = figure1_store.pid_of(figure1_store.root_oid)
        assert figure1_store.oids_on_pid(pid) == [figure1_store.root_oid]

    def test_oids_on_path_unknown(self, figure1_store):
        assert figure1_store.oids_on_path(Path.parse("nope")) == []

    def test_children_in_rank_order(self, figure1_store):
        children = figure1_store.children_of(O["article1"])
        assert children == [O["author1"], O["title1"], O["year1"]]

    def test_children_of_leaf(self, figure1_store):
        assert figure1_store.children_of(O["cdata_ben"]) == []

    def test_attributes_of(self, figure1_store):
        assert figure1_store.attributes_of(O["article1"]) == {"key": "BB99"}
        assert figure1_store.attributes_of(O["cdata_ben"]) == {"string": "Ben"}
        assert figure1_store.attributes_of(O["institute"]) == {}


class TestAncestry:
    def test_ancestry(self, figure1_store):
        assert figure1_store.ancestry(O["cdata_ben"]) == [
            O["cdata_ben"],
            O["firstname"],
            O["author1"],
            O["article1"],
            O["institute"],
            O["bibliography"],
        ]

    def test_is_ancestor(self, figure1_store):
        assert figure1_store.is_ancestor(O["article1"], O["cdata_ben"])
        assert figure1_store.is_ancestor(O["cdata_ben"], O["cdata_ben"])
        assert not figure1_store.is_ancestor(O["article2"], O["cdata_ben"])
        assert not figure1_store.is_ancestor(O["cdata_ben"], O["article1"])


class TestValidation:
    def test_validate_detects_corruption(self, figure1_doc):
        from repro.monet.transform import monet_transform

        store = monet_transform(figure1_doc)
        # Corrupt the parent column behind the engine's back.
        position = O["cdata_ben"] - store.first_oid
        store._oid_parent[position] = O["article2"]
        with pytest.raises(ModelError):
            store.validate()
