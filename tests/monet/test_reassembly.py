"""Unit tests for OID → object re-assembly (paper §2)."""

from repro.datamodel.serializer import serialize_node
from repro.datasets.figure1 import FIGURE1_OIDS as O
from repro.monet.reassembly import (
    associations_of,
    object_text,
    reassemble_node,
    reassemble_object,
    reassemble_subtree,
)


class TestAssociations:
    def test_associations_of_article(self, figure1_store):
        triples = associations_of(figure1_store, O["article1"])
        relations = {relation for relation, _, _ in triples}
        assert "bibliography/institute/article/author" in relations
        assert "bibliography/institute/article@key" in relations
        # children first (3 edges), then the key attribute
        assert len(triples) == 4

    def test_associations_of_cdata(self, figure1_store):
        triples = associations_of(figure1_store, O["cdata_ben"])
        assert triples == [
            (
                "bibliography/institute/article/author/firstname/cdata@string",
                O["cdata_ben"],
                "Ben",
            )
        ]


class TestObjectView:
    def test_object_record_like_paper(self, figure1_store):
        # The paper re-assembles object(o_article2) with key, author, year…
        record = reassemble_object(figure1_store, O["article2"])
        assert record["label"] == "article"
        assert record["key"] == "BK99"
        assert record["author"] == O["author2"]
        assert record["year"] == O["year2"]
        assert record["title"] == O["title2"]

    def test_repeated_labels_collect_into_list(self, figure1_store):
        record = reassemble_object(figure1_store, O["institute"])
        assert record["article"] == [O["article1"], O["article2"]]


class TestSubtree:
    def test_reassemble_node_attributes(self, figure1_store):
        node = reassemble_node(figure1_store, O["article1"])
        assert node.label == "article"
        assert node.attributes == {"key": "BB99"}
        assert node.oid == O["article1"]

    def test_subtree_matches_original_serialization(
        self, figure1_store, figure1_doc
    ):
        rebuilt = reassemble_subtree(figure1_store, O["article1"])
        original = figure1_doc.node(O["article1"])
        assert serialize_node(rebuilt) == serialize_node(original)

    def test_full_document_reassembly(self, figure1_store, figure1_doc):
        rebuilt = reassemble_subtree(figure1_store, figure1_store.root_oid)
        assert serialize_node(rebuilt) == serialize_node(figure1_doc.root)

    def test_sibling_order_preserved(self, figure1_store):
        rebuilt = reassemble_subtree(figure1_store, O["article2"])
        assert [c.label for c in rebuilt.children] == ["author", "year", "title"]


class TestObjectText:
    def test_object_text_document_order(self, figure1_store):
        assert object_text(figure1_store, O["article1"]) == (
            "Ben Bit How to Hack 1999"
        )

    def test_object_text_of_cdata(self, figure1_store):
        assert object_text(figure1_store, O["cdata_bob_byte"]) == "Bob Byte"

    def test_object_text_of_empty(self, figure1_store):
        # firstname's only text is its cdata child
        assert object_text(figure1_store, O["firstname"]) == "Ben"
