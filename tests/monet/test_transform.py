"""Unit tests for the Monet transform (Definition 4) on Figure 1."""

import pytest

from repro.datamodel.paths import Path
from repro.datasets.figure1 import FIGURE1_OIDS as O
from repro.datasets.figure1 import figure1_document
from repro.monet.transform import monet_transform


@pytest.fixture(scope="module")
def store():
    return monet_transform(figure1_document())


class TestRelationNames:
    """The transform reproduces the relation inventory of Figure 2."""

    EXPECTED = {
        "bibliography/institute",
        "bibliography/institute/article",
        "bibliography/institute/article@key",
        "bibliography/institute/article/author",
        "bibliography/institute/article/author/cdata",
        "bibliography/institute/article/author/cdata@string",
        "bibliography/institute/article/author/firstname",
        "bibliography/institute/article/author/firstname/cdata",
        "bibliography/institute/article/author/firstname/cdata@string",
        "bibliography/institute/article/author/lastname",
        "bibliography/institute/article/author/lastname/cdata",
        "bibliography/institute/article/author/lastname/cdata@string",
        "bibliography/institute/article/title",
        "bibliography/institute/article/title/cdata",
        "bibliography/institute/article/title/cdata@string",
        "bibliography/institute/article/year",
        "bibliography/institute/article/year/cdata",
        "bibliography/institute/article/year/cdata@string",
    }

    def test_relation_inventory(self, store):
        assert set(store.relation_names()) == self.EXPECTED


class TestFigure2Contents:
    """Spot-check tuple contents against Figure 2 of the paper."""

    def tuples(self, store, name):
        pid = store.summary.pid(Path.parse(name))
        relation = store.edges.get(pid) or store.strings.get(pid)
        return set(relation.to_list())

    def test_article_edges(self, store):
        assert self.tuples(store, "bibliography/institute/article") == {
            (O["institute"], O["article1"]),
            (O["institute"], O["article2"]),
        }

    def test_article_keys(self, store):
        assert self.tuples(store, "bibliography/institute/article@key") == {
            (O["article1"], "BB99"),
            (O["article2"], "BK99"),
        }

    def test_author_cdata_string(self, store):
        assert self.tuples(
            store, "bibliography/institute/article/author/cdata@string"
        ) == {(O["cdata_bob_byte"], "Bob Byte")}

    def test_title_strings(self, store):
        assert self.tuples(
            store, "bibliography/institute/article/title/cdata@string"
        ) == {
            (O["cdata_how_to_hack"], "How to Hack"),
            (O["cdata_hacking_rsi"], "Hacking & RSI"),
        }

    def test_year_strings(self, store):
        assert self.tuples(
            store, "bibliography/institute/article/year/cdata@string"
        ) == {
            (O["cdata_1999_a"], "1999"),
            (O["cdata_1999_b"], "1999"),
        }


class TestColumns:
    def test_validate_passes(self, store):
        store.validate()

    def test_parent_column_matches_document(self, store):
        doc = figure1_document()
        for oid in doc.iter_oids():
            assert store.parent_of(oid) == doc.parent_oid(oid)

    def test_pid_column_matches_document_paths(self, store):
        doc = figure1_document()
        for oid in doc.iter_oids():
            assert store.path_of(oid) == doc.path(oid)

    def test_rank_column(self, store):
        assert store.rank_of(O["author1"]) == 0
        assert store.rank_of(O["title1"]) == 1
        assert store.rank_of(O["year1"]) == 2

    def test_root(self, store):
        assert store.root_oid == O["bibliography"]
        assert store.parent_of(store.root_oid) is None

    def test_node_count(self, store):
        assert store.node_count == 19

    def test_every_non_root_in_exactly_one_edge_relation(self, store):
        seen = {}
        for pid, relation in store.edges.items():
            for _parent, child in relation:
                assert child not in seen
                seen[child] = pid
        assert len(seen) == store.node_count - 1


class TestDeterminism:
    def test_transform_is_deterministic(self):
        store1 = monet_transform(figure1_document())
        store2 = monet_transform(figure1_document())
        assert store1.relation_names() == store2.relation_names()
        for pid in store1.edges:
            assert store1.edges[pid] == store2.edges[pid]
