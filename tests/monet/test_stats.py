"""Unit tests for store statistics."""

from repro.monet.stats import collect_statistics


class TestFigure1Statistics:
    def test_counts(self, figure1_store):
        stats = collect_statistics(figure1_store)
        assert stats.node_count == 19
        assert stats.element_paths == 13
        assert stats.attribute_paths == 6
        assert stats.distinct_paths == 19
        assert stats.string_associations == 9

    def test_depths(self, figure1_store):
        stats = collect_statistics(figure1_store)
        assert stats.max_depth == 6  # firstname/lastname cdata
        assert 1.0 < stats.mean_depth < 6.0
        assert stats.depth_histogram[1] == 1  # the root
        assert sum(stats.depth_histogram) == 19

    def test_fanout(self, figure1_store):
        stats = collect_statistics(figure1_store)
        assert stats.max_fanout == 3  # both articles have 3 children
        assert stats.mean_fanout > 1.0

    def test_histogram_densest_first(self, figure1_store):
        stats = collect_statistics(figure1_store)
        counts = [count for _path, count in stats.path_histogram]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] == 2  # article and friends appear twice

    def test_schema_ratio(self, figure1_store):
        stats = collect_statistics(figure1_store)
        assert stats.schema_ratio() == 19 / 19  # fully irregular example

    def test_render(self, figure1_store):
        text = collect_statistics(figure1_store).render(top=3)
        assert "nodes:" in text
        assert "densest paths" in text
        assert "bibliography" in text


class TestRegularStore:
    def test_dblp_schema_is_much_smaller_than_instance(self, dblp_store):
        stats = collect_statistics(dblp_store)
        assert stats.node_count > 1000
        assert stats.schema_ratio() < 0.05  # regular mark-up

    def test_depth_histogram_total(self, dblp_store):
        stats = collect_statistics(dblp_store)
        assert sum(stats.depth_histogram) == stats.node_count
