"""Unit tests for the interned path summary / schema tree."""

import pytest

from repro.datamodel.errors import UnknownPathError
from repro.datamodel.paths import Path
from repro.monet.pathsummary import PathSummary


@pytest.fixture
def summary():
    s = PathSummary()
    for text in (
        "bib",
        "bib/article",
        "bib/article/year",
        "bib/article/author",
        "bib/article@key",
        "bib/journal",
    ):
        s.intern(Path.parse(text))
    return s


class TestInterning:
    def test_intern_idempotent(self, summary):
        path = Path.parse("bib/article")
        assert summary.intern(path) == summary.intern(path)

    def test_intern_creates_prefixes(self):
        s = PathSummary()
        s.intern(Path.parse("a/b/c"))
        assert Path.parse("a") in s
        assert Path.parse("a/b") in s

    def test_pid_of_unknown_raises(self, summary):
        with pytest.raises(UnknownPathError):
            summary.pid(Path.parse("nope"))

    def test_maybe_pid(self, summary):
        assert summary.maybe_pid(Path.parse("nope")) is None
        assert summary.maybe_pid(Path.parse("bib")) is not None

    def test_len_counts_empty_root(self, summary):
        # 6 interned paths + reserved empty path
        assert len(summary) == 7

    def test_round_trip(self, summary):
        for pid in summary.pids():
            assert summary.pid(summary.path(pid)) == pid


class TestSchemaTree:
    def test_parent_pointers(self, summary):
        article = summary.pid(Path.parse("bib/article"))
        year = summary.pid(Path.parse("bib/article/year"))
        assert summary.parent(year) == article

    def test_empty_path_is_own_parent(self, summary):
        assert summary.parent(0) == 0

    def test_children(self, summary):
        article = summary.pid(Path.parse("bib/article"))
        labels = {summary.label(pid) for pid in summary.children(article)}
        assert labels == {"year", "author", "key"}

    def test_depths(self, summary):
        assert summary.depth(summary.pid(Path.parse("bib"))) == 1
        assert summary.depth(summary.pid(Path.parse("bib/article/year"))) == 3

    def test_attribute_detection(self, summary):
        key = summary.pid(Path.parse("bib/article@key"))
        year = summary.pid(Path.parse("bib/article/year"))
        assert summary.is_attribute(key)
        assert not summary.is_attribute(year)

    def test_element_and_attribute_pids_partition(self, summary):
        everything = set(summary.pids())
        elements = set(summary.element_pids())
        attributes = set(summary.attribute_pids())
        assert elements | attributes == everything
        assert not elements & attributes


class TestPrefixOps:
    def test_prefix_leq(self, summary):
        year = summary.pid(Path.parse("bib/article/year"))
        article = summary.pid(Path.parse("bib/article"))
        bib = summary.pid(Path.parse("bib"))
        assert summary.prefix_leq(year, article)
        assert summary.prefix_leq(year, bib)
        assert not summary.prefix_leq(article, year)
        assert summary.prefix_leq(year, year)

    def test_prefix_leq_incomparable(self, summary):
        year = summary.pid(Path.parse("bib/article/year"))
        journal = summary.pid(Path.parse("bib/journal"))
        assert not summary.prefix_leq(year, journal)
        assert not summary.prefix_leq(journal, year)

    def test_common_prefix(self, summary):
        year = summary.pid(Path.parse("bib/article/year"))
        author = summary.pid(Path.parse("bib/article/author"))
        journal = summary.pid(Path.parse("bib/journal"))
        article = summary.pid(Path.parse("bib/article"))
        bib = summary.pid(Path.parse("bib"))
        assert summary.common_prefix(year, author) == article
        assert summary.common_prefix(year, journal) == bib
        assert summary.common_prefix(year, year) == year


class TestTraversals:
    def test_postorder_children_before_parents(self, summary):
        order = summary.postorder()
        positions = {pid: index for index, pid in enumerate(order)}
        for pid in summary.pids():
            for child in summary.children(pid):
                assert positions[child] < positions[pid]

    def test_postorder_covers_all(self, summary):
        assert sorted(summary.postorder()) == sorted(summary.pids())

    def test_pids_by_depth_desc(self, summary):
        order = summary.pids_by_depth_desc()
        depths = [summary.depth(pid) for pid in order]
        assert depths == sorted(depths, reverse=True)
