"""Unit tests for JSON image persistence."""

import pytest

from repro.datamodel.errors import StorageError
from repro.datasets.figure1 import figure1_document
from repro.monet.storage import dumps, load, loads, save
from repro.monet.transform import monet_transform


class TestRoundTrip:
    def test_loads_dumps_identity(self, figure1_store):
        clone = loads(dumps(figure1_store))
        assert clone.node_count == figure1_store.node_count
        assert clone.root_oid == figure1_store.root_oid
        assert clone.relation_names() == figure1_store.relation_names()
        for oid in figure1_store.iter_oids():
            assert clone.path_of(oid) == figure1_store.path_of(oid)
            assert clone.parent_of(oid) == figure1_store.parent_of(oid)
            assert clone.rank_of(oid) == figure1_store.rank_of(oid)
            assert clone.attributes_of(oid) == figure1_store.attributes_of(oid)

    def test_save_load_file(self, tmp_path, figure1_store):
        image = tmp_path / "store.json"
        save(figure1_store, image)
        clone = load(image)
        assert clone.node_count == figure1_store.node_count

    def test_meet_agrees_after_reload(self, figure1_store):
        from repro.core import meet2

        clone = loads(dumps(figure1_store))
        assert meet2(clone, 6, 8) == meet2(figure1_store, 6, 8)

    def test_nonzero_first_oid_preserved(self):
        store = monet_transform(figure1_document())
        clone = loads(dumps(store))
        assert clone.first_oid == 1


class TestErrors:
    def test_not_json(self):
        with pytest.raises(StorageError):
            loads("definitely not json{")

    def test_wrong_format_marker(self):
        with pytest.raises(StorageError):
            loads('{"format": "something-else", "version": 1}')

    def test_wrong_version(self, figure1_store):
        text = dumps(figure1_store).replace('"version": 1', '"version": 99')
        with pytest.raises(StorageError):
            loads(text)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load(tmp_path / "absent.json")

    def test_indent_option(self, figure1_store):
        assert "\n" in dumps(figure1_store, indent=2)
