"""Unit tests for JSON image persistence."""

import pytest

from repro.datamodel.errors import StorageError
from repro.datasets.figure1 import figure1_document
from repro.monet.storage import dumps, load, loads, save
from repro.monet.transform import monet_transform


class TestRoundTrip:
    def test_loads_dumps_identity(self, figure1_store):
        clone = loads(dumps(figure1_store))
        assert clone.node_count == figure1_store.node_count
        assert clone.root_oid == figure1_store.root_oid
        assert clone.relation_names() == figure1_store.relation_names()
        for oid in figure1_store.iter_oids():
            assert clone.path_of(oid) == figure1_store.path_of(oid)
            assert clone.parent_of(oid) == figure1_store.parent_of(oid)
            assert clone.rank_of(oid) == figure1_store.rank_of(oid)
            assert clone.attributes_of(oid) == figure1_store.attributes_of(oid)

    def test_save_load_file(self, tmp_path, figure1_store):
        image = tmp_path / "store.json"
        save(figure1_store, image)
        clone = load(image)
        assert clone.node_count == figure1_store.node_count

    def test_meet_agrees_after_reload(self, figure1_store):
        from repro.core import meet2

        clone = loads(dumps(figure1_store))
        assert meet2(clone, 6, 8) == meet2(figure1_store, 6, 8)

    def test_nonzero_first_oid_preserved(self):
        store = monet_transform(figure1_document())
        clone = loads(dumps(store))
        assert clone.first_oid == 1


class TestErrors:
    def test_not_json(self):
        with pytest.raises(StorageError):
            loads("definitely not json{")

    def test_wrong_format_marker(self):
        with pytest.raises(StorageError):
            loads('{"format": "something-else", "version": 1}')

    def test_wrong_version(self, figure1_store):
        text = dumps(figure1_store).replace('"version": 1', '"version": 99')
        with pytest.raises(StorageError):
            loads(text)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load(tmp_path / "absent.json")

    def test_indent_option(self, figure1_store):
        assert "\n" in dumps(figure1_store, indent=2)


class TestSaveIndent:
    def test_save_passes_indent_through(self, tmp_path, figure1_store):
        compact = tmp_path / "compact.json"
        pretty = tmp_path / "pretty.json"
        save(figure1_store, compact)
        save(figure1_store, pretty, indent=2)
        compact_text = compact.read_text(encoding="utf-8")
        pretty_text = pretty.read_text(encoding="utf-8")
        assert "\n" not in compact_text
        assert pretty_text.count("\n") > 10
        assert load(pretty).node_count == figure1_store.node_count

    def test_pretty_image_matches_dumps(self, tmp_path, figure1_store):
        path = tmp_path / "image.json"
        save(figure1_store, path, indent=4)
        assert path.read_text(encoding="utf-8") == dumps(figure1_store, indent=4)


class TestCorruptImages:
    """Every corruption mode raises StorageError with a precise reason."""

    def _image(self, figure1_store):
        import json

        return json.loads(dumps(figure1_store))

    def _loads(self, image):
        import json

        return loads(json.dumps(image))

    def test_missing_required_key(self, figure1_store):
        for key in ("paths", "edges", "strings", "ranks",
                    "first_oid", "node_count", "root_oid"):
            image = self._image(figure1_store)
            del image[key]
            with pytest.raises(
                StorageError, match=f"required field {key!r} is missing"
            ):
                self._loads(image)

    def test_malformed_buns(self, figure1_store):
        image = self._image(figure1_store)
        name = next(iter(image["edges"]))
        image["edges"][name] = [[1, 2, 3]]  # not a (head, tail) pair
        with pytest.raises(StorageError, match="corrupt relation"):
            self._loads(image)

    def test_non_list_relation(self, figure1_store):
        image = self._image(figure1_store)
        name = next(iter(image["ranks"]))
        image["ranks"][name] = 42
        with pytest.raises(StorageError, match="corrupt relation"):
            self._loads(image)

    def test_relation_family_not_a_mapping(self, figure1_store):
        image = self._image(figure1_store)
        image["strings"] = ["not", "a", "mapping"]
        with pytest.raises(StorageError, match="not a mapping"):
            self._loads(image)

    def test_oid_outside_declared_range(self, figure1_store):
        image = self._image(figure1_store)
        image["node_count"] = 3  # truncate the declared range
        with pytest.raises(StorageError, match="outside the declared"):
            self._loads(image)

    def test_non_numeric_counts(self, figure1_store):
        image = self._image(figure1_store)
        image["node_count"] = "nineteen"
        with pytest.raises(StorageError, match="must be ints"):
            self._loads(image)

    def test_non_numeric_rank(self, figure1_store):
        image = self._image(figure1_store)
        name = next(iter(image["ranks"]))
        image["ranks"][name][0][1] = "not-a-rank"
        with pytest.raises(StorageError, match="non-numeric rank"):
            self._loads(image)

    def test_non_numeric_parent(self, figure1_store):
        image = self._image(figure1_store)
        name = next(iter(image["edges"]))
        image["edges"][name][0][0] = "not-a-parent"
        with pytest.raises(StorageError, match="non-numeric parent"):
            self._loads(image)

    def test_non_numeric_oid(self, figure1_store):
        image = self._image(figure1_store)
        name = next(iter(image["ranks"]))
        image["ranks"][name][0] = ["x", 1]
        with pytest.raises(StorageError, match="corrupt|non-numeric"):
            self._loads(image)

    def test_inconsistent_columns(self, figure1_store):
        # Move an edge into the wrong relation: every piece parses, but
        # the pid cross-validation of the rebuilt columns fails.
        image = self._image(figure1_store)
        names = iter(image["edges"])
        first, second = next(names), next(names)
        image["edges"][second].append(image["edges"][first].pop(0))
        with pytest.raises(StorageError, match="inconsistent image"):
            self._loads(image)

    def test_not_an_object(self):
        with pytest.raises(StorageError, match="not a JSON object"):
            loads("[1, 2, 3]")
