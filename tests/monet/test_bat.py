"""Unit tests for the BAT column engine (MIL primitives)."""

import pytest

from repro.monet.bat import BAT


@pytest.fixture
def edges():
    return BAT([(1, 2), (1, 3), (2, 4)], name="edges")


@pytest.fixture
def values():
    return BAT([(2, "x"), (3, "y"), (4, "x")], name="values")


class TestBasics:
    def test_count_len_bool(self, edges):
        assert edges.count() == len(edges) == 3
        assert bool(edges)
        assert not BAT()

    def test_iteration_order(self, edges):
        assert list(edges) == [(1, 2), (1, 3), (2, 4)]

    def test_from_columns_validates_lengths(self):
        with pytest.raises(ValueError):
            BAT.from_columns([1, 2], [3])

    def test_singleton(self):
        assert BAT.singleton(1, "a").to_list() == [(1, "a")]

    def test_bag_equality_order_insensitive(self):
        assert BAT([(1, 2), (3, 4)]) == BAT([(3, 4), (1, 2)])
        assert BAT([(1, 2)]) != BAT([(1, 2), (1, 2)])

    def test_unhashable(self, edges):
        with pytest.raises(TypeError):
            hash(edges)

    def test_copy_independent(self, edges):
        clone = edges.copy(name="clone")
        assert clone == edges and clone.name == "clone"


class TestFind:
    def test_find_is_first_match(self, edges):
        assert edges.find(1) == 2

    def test_find_missing_raises(self, edges):
        with pytest.raises(KeyError):
            edges.find(99)

    def test_find_all(self, edges):
        assert edges.find_all(1) == [2, 3]
        assert edges.find_all(9) == []


class TestUnaryOps:
    def test_reverse(self, edges):
        assert edges.reverse().to_list() == [(2, 1), (3, 1), (4, 2)]

    def test_reverse_involution(self, edges):
        assert edges.reverse().reverse() == edges

    def test_mirror(self, values):
        assert values.mirror().to_list() == [(2, 2), (3, 3), (4, 4)]

    def test_mark(self, values):
        assert values.mark(10).to_list() == [(2, 10), (3, 11), (4, 12)]


class TestSelections:
    def test_select_on_tail(self, values):
        assert values.select(lambda t: t == "x").head_set() == {2, 4}

    def test_select_eq_uses_index(self, values):
        assert values.select_eq("y").to_list() == [(3, "y")]
        assert values.select_eq("zz").count() == 0

    def test_select_range(self):
        bat = BAT([(i, i * 10) for i in range(5)])
        assert bat.select_range(10, 30).head_set() == {1, 2, 3}

    def test_uselect(self, values):
        assert values.uselect(lambda t: t == "x").to_list() == [(2, 2), (4, 4)]

    def test_select_heads(self, edges):
        assert edges.select_heads({1}).to_list() == [(1, 2), (1, 3)]


class TestJoins:
    def test_join_composes_relations(self, edges, values):
        joined = edges.join(values)
        # (1,2)·(2,x) → (1,x); (1,3)·(3,y) → (1,y); (2,4)·(4,x) → (2,x)
        assert joined == BAT([(1, "x"), (1, "y"), (2, "x")])

    def test_join_with_duplicates_multiplies(self):
        left = BAT([(1, "a"), (2, "a")])
        right = BAT([("a", 10), ("a", 20)])
        assert left.join(right).count() == 4

    def test_semijoin(self, edges):
        filter_bat = BAT([(1, None)])
        assert edges.semijoin(filter_bat).to_list() == [(1, 2), (1, 3)]

    def test_antijoin_heads(self, edges):
        filter_bat = BAT([(1, None)])
        assert edges.antijoin_heads(filter_bat).to_list() == [(2, 4)]

    def test_empty_join(self, edges):
        assert edges.join(BAT()).count() == 0


class TestSetOps:
    def test_kdiff(self, edges):
        assert edges.kdiff(BAT([(2, 0)])).head_set() == {1}

    def test_kunion_prefers_self(self):
        left = BAT([(1, "a")])
        right = BAT([(1, "b"), (2, "c")])
        assert left.kunion(right).to_list() == [(1, "a"), (2, "c")]

    def test_kintersect(self, edges):
        assert edges.kintersect(BAT([(2, None)])).to_list() == [(2, 4)]

    def test_union_all_keeps_duplicates(self, edges):
        doubled = edges.union_all(edges)
        assert doubled.count() == 6

    def test_kdiff_kunion_roundtrip(self, edges):
        other = BAT([(1, 0)])
        recombined = edges.kdiff(other).kunion(edges.semijoin(other))
        assert recombined.head_set() == edges.head_set()


class TestDuplicates:
    def test_kunique(self):
        bat = BAT([(1, "a"), (1, "b"), (2, "c")])
        assert bat.kunique().to_list() == [(1, "a"), (2, "c")]

    def test_unique(self):
        bat = BAT([(1, "a"), (1, "a"), (1, "b")])
        assert bat.unique().to_list() == [(1, "a"), (1, "b")]


class TestGrouping:
    def test_group_by_head(self, edges):
        assert edges.group_by_head() == {1: [2, 3], 2: [4]}

    def test_histogram(self, edges):
        assert edges.histogram() == {1: 2, 2: 1}

    def test_to_dict_first_wins(self):
        bat = BAT([(1, "a"), (1, "b")])
        assert bat.to_dict() == {1: "a"}


class TestIndexes:
    def test_head_index_positions(self, edges):
        assert edges.head_index() == {1: [0, 1], 2: [2]}

    def test_tail_index_positions(self, values):
        assert values.tail_index() == {"x": [0, 2], "y": [1]}

    def test_index_cached(self, edges):
        assert edges.head_index() is edges.head_index()
