"""LatencyWindow: ring wraparound, percentile oracle, thread safety."""

import random
import threading

import pytest

from repro.api.admission import LatencyWindow


def _oracle(samples):
    """The window's percentile definition, computed independently."""
    ordered = sorted(samples)

    def at(q):
        return round(ordered[min(len(ordered) - 1, int(q * len(ordered)))] * 1000, 3)

    return {
        "count": len(ordered),
        "p50_ms": at(0.50),
        "p95_ms": at(0.95),
        "p99_ms": at(0.99),
    }


class TestRingWraparound:
    def test_empty_window(self):
        window = LatencyWindow(size=8)
        assert window.percentiles() == {
            "count": 0,
            "p50_ms": None,
            "p95_ms": None,
            "p99_ms": None,
        }

    def test_keeps_exactly_the_last_size_samples(self):
        window = LatencyWindow(size=4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            window.record(value)
        # The ring holds 3..6; older samples fell off exactly.
        stats = window.percentiles()
        assert stats == _oracle([3.0, 4.0, 5.0, 6.0])
        assert stats["count"] == 4

    def test_wraparound_many_times_over(self):
        window = LatencyWindow(size=16)
        values = [float(i) for i in range(1000)]
        for value in values:
            window.record(value)
        assert window.percentiles() == _oracle(values[-16:])


class TestPercentileOracle:
    @pytest.mark.parametrize("count", [1, 2, 3, 10, 100, 512])
    def test_matches_sorted_oracle(self, count):
        rng = random.Random(count)
        window = LatencyWindow(size=512)
        values = [rng.expovariate(100.0) for _ in range(count)]
        for value in values:
            window.record(value)
        assert window.percentiles() == _oracle(values)

    def test_single_sample_is_every_percentile(self):
        window = LatencyWindow()
        window.record(0.25)
        stats = window.percentiles()
        assert stats["p50_ms"] == stats["p95_ms"] == stats["p99_ms"] == 250.0


class TestThreadHammer:
    def test_eight_threads_record_and_read_concurrently(self):
        window = LatencyWindow(size=512)
        stop = threading.Event()
        errors = []

        def writer(index):
            try:
                for step in range(5_000):
                    window.record(index + step * 1e-6)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        def reader():
            try:
                while not stop.is_set():
                    stats = window.percentiles()
                    assert stats["count"] <= 512
                    if stats["count"]:
                        assert stats["p50_ms"] <= stats["p99_ms"]
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        writers = [
            threading.Thread(target=writer, args=(i,)) for i in range(8)
        ]
        watcher = threading.Thread(target=reader)
        watcher.start()
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        watcher.join()
        assert errors == []
        stats = window.percentiles()
        assert stats["count"] == 512
        assert stats["p50_ms"] is not None
