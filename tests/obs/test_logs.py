"""Structured logging: formatters, the one-handler rule, log_event."""

import io
import json
import logging

import pytest

from repro.obs.logs import (
    JsonLogFormatter,
    TextLogFormatter,
    configure_logging,
    log_event,
)


@pytest.fixture(autouse=True)
def _clean_repro_logger():
    """Leave the ``repro`` logger exactly as we found it."""
    logger = logging.getLogger("repro")
    saved = (list(logger.handlers), logger.level, logger.propagate)
    yield
    logger.handlers[:] = saved[0]
    logger.setLevel(saved[1])
    logger.propagate = saved[2]


def _capture(json_logs=False, level="info"):
    stream = io.StringIO()
    configure_logging(json_logs=json_logs, level=level, stream=stream)
    return stream


class TestJsonFormatter:
    def test_record_is_one_json_object_with_fields_flattened(self):
        stream = _capture(json_logs=True)
        log_event(
            logging.getLogger("repro.serve.access"),
            logging.INFO,
            "access",
            trace_id="abc123",
            route="/v1/query",
            status=200,
            latency_ms=1.5,
        )
        record = json.loads(stream.getvalue())
        assert record["message"] == "access"
        assert record["level"] == "info"
        assert record["logger"] == "repro.serve.access"
        assert record["trace_id"] == "abc123"
        assert record["route"] == "/v1/query"
        assert record["status"] == 200
        assert record["latency_ms"] == 1.5
        assert "ts" in record and "time" in record

    def test_exception_is_included(self):
        stream = _capture(json_logs=True, level="error")
        logger = logging.getLogger("repro.test")
        try:
            raise RuntimeError("kaboom")
        except RuntimeError:
            logger.exception("failed")
        record = json.loads(stream.getvalue())
        assert "kaboom" in record["exception"]

    def test_non_serializable_fields_fall_back_to_str(self):
        stream = _capture(json_logs=True)
        log_event(
            logging.getLogger("repro.test"),
            logging.INFO,
            "msg",
            payload=object(),
        )
        assert "object object at" in json.loads(stream.getvalue())["payload"]


class TestTextFormatter:
    def test_line_carries_key_values(self):
        stream = _capture(json_logs=False)
        log_event(
            logging.getLogger("repro.test"),
            logging.INFO,
            "access",
            route="/v1/query",
            status=200,
        )
        line = stream.getvalue().strip()
        assert "access" in line
        assert "route=/v1/query" in line
        assert "status=200" in line
        assert "INFO" in line

    def test_formatters_share_the_fields_convention(self):
        record = logging.LogRecord(
            "repro.x", logging.INFO, __file__, 1, "msg", (), None
        )
        record.fields = {"a": 1}
        assert "a=1" in TextLogFormatter().format(record)
        assert json.loads(JsonLogFormatter().format(record))["a"] == 1


class TestConfigureLogging:
    def test_installs_exactly_one_handler(self):
        configure_logging(stream=io.StringIO())
        configure_logging(stream=io.StringIO())
        configure_logging(stream=io.StringIO())
        logger = logging.getLogger("repro")
        ours = [h for h in logger.handlers if h.name == "repro-obs"]
        assert len(ours) == 1
        assert logger.propagate is False

    def test_level_threshold_filters(self):
        stream = _capture(level="warning")
        log_event(
            logging.getLogger("repro.serve.access"),
            logging.INFO,
            "access",
        )
        assert stream.getvalue() == ""
        log_event(
            logging.getLogger("repro.serve.access"),
            logging.WARNING,
            "slow query",
        )
        assert "slow query" in stream.getvalue()

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="chatty")

    def test_log_event_skips_formatting_when_disabled(self):
        stream = _capture(level="error")
        log_event(
            logging.getLogger("repro.test"), logging.DEBUG, "not shown"
        )
        assert stream.getvalue() == ""
