"""A strict Prometheus text-exposition (0.0.4) parser for the tests.

Stricter than a scraper needs to be, on purpose: every rule the format
document states is enforced, so a regression in the renderer fails
loudly here rather than silently in some monitoring stack.

* ``# HELP`` then ``# TYPE`` precede a family's samples, once each;
* metric and label names match the Prometheus charsets;
* label values use only the three escapes ``\\\\``, ``\\n``, ``\\"``;
* sample values parse as floats (``+Inf``/``-Inf``/``NaN`` allowed);
* a family's samples are contiguous and match its declared name
  (histograms may append ``_bucket``/``_sum``/``_count``);
* histogram buckets are cumulative and non-decreasing, end at ``+Inf``,
  and the ``+Inf`` bucket equals ``_count``.
"""

import math
import re

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
KNOWN_KINDS = {"counter", "gauge", "histogram", "summary", "untyped"}
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>-?\d+))?$"
)


class PromParseError(AssertionError):
    """The exposition violated the text format."""


def _parse_value(text, line):
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise PromParseError(f"unparseable sample value {text!r}: {line!r}")


def _parse_labels(raw, line):
    """``a="b",c="d"`` → dict, enforcing names, quoting and escapes."""
    labels = {}
    index = 0
    while index < len(raw):
        try:
            eq = raw.index("=", index)
        except ValueError:
            raise PromParseError(f"label without '=': {line!r}") from None
        name = raw[index:eq]
        if not LABEL_NAME.match(name):
            raise PromParseError(f"bad label name {name!r}: {line!r}")
        if eq + 1 >= len(raw) or raw[eq + 1] != '"':
            raise PromParseError(f"label value not quoted: {line!r}")
        value_chars = []
        index = eq + 2
        while True:
            if index >= len(raw):
                raise PromParseError(f"unterminated label value: {line!r}")
            char = raw[index]
            if char == "\\":
                escape = raw[index : index + 2]
                if escape == "\\\\":
                    value_chars.append("\\")
                elif escape == "\\n":
                    value_chars.append("\n")
                elif escape == '\\"':
                    value_chars.append('"')
                else:
                    raise PromParseError(
                        f"invalid escape {escape!r}: {line!r}"
                    )
                index += 2
            elif char == '"':
                index += 1
                break
            elif char == "\n":
                raise PromParseError(f"raw newline in label value: {line!r}")
            else:
                value_chars.append(char)
                index += 1
        if name in labels:
            raise PromParseError(f"duplicate label {name!r}: {line!r}")
        labels[name] = "".join(value_chars)
        if index < len(raw):
            if raw[index] != ",":
                raise PromParseError(
                    f"expected ',' between labels: {line!r}"
                )
            index += 1
    return labels


def parse_prometheus_text(text):
    """Parse one exposition; returns {family: {"kind", "help", "samples"}}.

    ``samples`` is a list of ``(sample_name, labels_dict, value)``.
    Raises :class:`PromParseError` on any format violation.
    """
    if not text.endswith("\n"):
        raise PromParseError("exposition must end with a newline")
    families = {}
    current = None  # family name whose samples may follow
    pending_help = None  # family that has HELP but not yet TYPE
    for line in text.split("\n")[:-1]:
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#":
                raise PromParseError(f"malformed comment line: {line!r}")
            keyword, name = parts[1], parts[2]
            if keyword == "HELP":
                if not METRIC_NAME.match(name):
                    raise PromParseError(f"bad family name: {line!r}")
                if name in families:
                    raise PromParseError(f"family {name!r} repeated")
                families[name] = {
                    "kind": None,
                    "help": parts[3] if len(parts) == 4 else "",
                    "samples": [],
                }
                pending_help = name
                current = None
            elif keyword == "TYPE":
                if name != pending_help:
                    raise PromParseError(
                        f"TYPE without immediately preceding HELP: {line!r}"
                    )
                kind = parts[3] if len(parts) == 4 else ""
                if kind not in KNOWN_KINDS:
                    raise PromParseError(f"unknown kind {kind!r}: {line!r}")
                families[name]["kind"] = kind
                current = name
                pending_help = None
            else:
                raise PromParseError(f"unknown comment keyword: {line!r}")
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise PromParseError(f"malformed sample line: {line!r}")
        sample_name = match.group("name")
        if current is None:
            raise PromParseError(f"sample before HELP/TYPE: {line!r}")
        kind = families[current]["kind"]
        allowed = {current}
        if kind == "histogram":
            allowed = {
                current + "_bucket", current + "_sum", current + "_count"
            }
        elif kind == "summary":
            allowed = {current, current + "_sum", current + "_count"}
        if sample_name not in allowed:
            raise PromParseError(
                f"sample {sample_name!r} outside family {current!r}"
            )
        raw_labels = match.group("labels")
        labels = (
            _parse_labels(raw_labels, line) if raw_labels is not None else {}
        )
        value = _parse_value(match.group("value"), line)
        families[current]["samples"].append((sample_name, labels, value))
    for name, family in families.items():
        if family["kind"] is None:
            raise PromParseError(f"family {name!r} has HELP but no TYPE")
        if family["kind"] == "histogram":
            _check_histogram(name, family["samples"])
    return families


def _check_histogram(name, samples):
    """Cumulative, non-decreasing buckets; +Inf equals _count."""
    by_series = {}
    counts = {}
    for sample_name, labels, value in samples:
        if sample_name == name + "_bucket":
            if "le" not in labels:
                raise PromParseError(f"{name} bucket without 'le' label")
            key = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            by_series.setdefault(key, []).append(
                (_parse_value(labels["le"], labels["le"]), value)
            )
        elif sample_name == name + "_count":
            key = tuple(sorted(labels.items()))
            counts[key] = value
    for key, buckets in by_series.items():
        bounds = [bound for bound, _ in buckets]
        if bounds != sorted(bounds):
            raise PromParseError(f"{name} buckets out of order: {bounds}")
        if not bounds or bounds[-1] != math.inf:
            raise PromParseError(f"{name} histogram missing +Inf bucket")
        values = [value for _, value in buckets]
        if any(b > a for a, b in zip(values[1:], values)):
            raise PromParseError(f"{name} buckets not cumulative: {values}")
        if counts.get(key) != values[-1]:
            raise PromParseError(
                f"{name} +Inf bucket != _count: {values[-1]} vs "
                f"{counts.get(key)}"
            )
