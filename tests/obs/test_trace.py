"""The trace layer: spans, contextvar scoping, cross-process absorb."""

import threading

import pytest

from repro.obs.trace import (
    Trace,
    current_trace,
    new_trace_id,
    span,
    trace_scope,
)


class TestTraceBasics:
    def test_new_trace_id_shape(self):
        first, second = new_trace_id(), new_trace_id()
        assert len(first) == 16
        assert int(first, 16) >= 0  # hex
        assert first != second

    def test_add_rounds_and_keeps_attrs(self):
        trace = Trace("abc")
        trace.add("merge", 1.23456, shards=2)
        [entry] = trace.spans
        assert entry == {"name": "merge", "ms": 1.235, "shards": 2}

    def test_span_contextmanager_measures(self):
        trace = Trace()
        with trace.span("stage"):
            pass
        [entry] = trace.spans
        assert entry["name"] == "stage"
        assert entry["ms"] >= 0

    def test_span_records_even_on_exception(self):
        trace = Trace()
        with pytest.raises(RuntimeError):
            with trace.span("doomed"):
                raise RuntimeError("boom")
        assert trace.span_names() == ["doomed"]

    def test_total_ms_sums_matching_names(self):
        trace = Trace()
        trace.add("shard.scatter", 1.0)
        trace.add("shard.scatter", 2.5)
        trace.add("merge", 10.0)
        assert trace.total_ms("shard.scatter") == pytest.approx(3.5)

    def test_to_dict_payload(self):
        trace = Trace("feed")
        trace.add("parse", 0.5)
        payload = trace.to_dict()
        assert payload["trace_id"] == "feed"
        assert payload["span_count"] == 1
        assert payload["spans"][0]["name"] == "parse"

    def test_spans_returns_copies(self):
        trace = Trace()
        trace.add("parse", 1.0)
        trace.spans[0]["name"] = "mutated"
        assert trace.span_names() == ["parse"]


class TestAbsorb:
    def test_absorb_worker_spans(self):
        trace = Trace("t1")
        trace.absorb(
            {
                "trace_id": "t1",
                "spans": [{"name": "shard[0].nearest", "ms": 3.0, "pid": 7}],
            }
        )
        [entry] = trace.spans
        assert entry["pid"] == 7

    def test_absorb_rejects_mismatched_trace_id(self):
        trace = Trace("t1")
        trace.absorb({"trace_id": "other", "spans": [{"name": "x", "ms": 1}]})
        assert trace.spans == []

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            "nope",
            {"trace_id": "t1"},
            {"trace_id": "t1", "spans": "nope"},
            {"trace_id": "t1", "spans": [{"name": "missing-ms"}, 17]},
        ],
    )
    def test_absorb_ignores_malformed_payloads(self, payload):
        trace = Trace("t1")
        trace.absorb(payload)
        assert trace.spans == []


class TestContextScoping:
    def test_no_trace_by_default(self):
        assert current_trace() is None

    def test_trace_scope_pins_and_restores(self):
        trace = Trace()
        with trace_scope(trace):
            assert current_trace() is trace
            inner = Trace()
            with trace_scope(inner):
                assert current_trace() is inner
            assert current_trace() is trace
        assert current_trace() is None

    def test_trace_scope_none_clears(self):
        outer = Trace()
        with trace_scope(outer):
            with trace_scope(None):
                assert current_trace() is None
            assert current_trace() is outer

    def test_module_span_records_into_current(self):
        trace = Trace()
        with trace_scope(trace):
            with span("merge", shards=3):
                pass
        [entry] = trace.spans
        assert entry["name"] == "merge"
        assert entry["shards"] == 3

    def test_module_span_is_noop_without_trace(self):
        with span("ignored"):
            pass  # must not raise, must not record anywhere

    def test_threads_do_not_inherit_scope(self):
        trace = Trace()
        seen = []
        with trace_scope(trace):
            thread = threading.Thread(
                target=lambda: seen.append(current_trace())
            )
            thread.start()
            thread.join()
        assert seen == [None]

    def test_concurrent_adds_are_safe(self):
        trace = Trace()

        def hammer(index):
            for _ in range(500):
                trace.add(f"worker{index}", 0.1)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(trace.spans) == 8 * 500
