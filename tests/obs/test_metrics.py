"""Typed metrics and the hand-written Prometheus text exposition.

The renderer is validated with the strict 0.0.4 parser in
``prom_parser`` — every HELP/TYPE rule, the label escaping rules and
histogram cumulativity are enforced, not eyeballed.
"""

import json
import math
import threading

import pytest

from repro.obs.metrics import (
    CallbackGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

from .prom_parser import PromParseError, parse_prometheus_text


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("repro_test_total", "help")
        assert counter.value == 0
        counter.inc()
        counter.inc(2)
        assert counter.value == 3

    def test_value_is_int_for_integral_counts(self):
        counter = Counter("repro_test_total", "help")
        counter.inc(5)
        assert isinstance(counter.value, int)

    def test_rejects_negative_increment(self):
        counter = Counter("repro_test_total", "help")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_counter_sums_children(self):
        counter = Counter("repro_test_total", "help", label_names=("route",))
        counter.labels(route="/a").inc()
        counter.labels(route="/a").inc()
        counter.labels(route="/b").inc(3)
        assert counter.value == 5
        samples = dict(
            ((labels["route"]), value)
            for _suffix, labels, value in counter.collect()
        )
        assert samples == {"/a": 2, "/b": 3}

    def test_labelled_counter_refuses_bare_inc(self):
        counter = Counter("repro_test_total", "help", label_names=("route",))
        with pytest.raises(ValueError):
            counter.inc()

    def test_labels_require_exact_names(self):
        counter = Counter("repro_test_total", "help", label_names=("route",))
        with pytest.raises(ValueError):
            counter.labels(nope="x")

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("0bad-name", "help")

    def test_thread_hammer_loses_no_increment(self):
        counter = Counter("repro_test_total", "help")

        def hammer():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("repro_depth", "help")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_callback_function_wins(self):
        gauge = Gauge("repro_depth", "help")
        gauge.set_function(lambda: 42)
        gauge.set(7)  # ignored once a function is installed
        assert gauge.value == 42


class TestCallbackGauge:
    def test_labelled_samples_computed_per_scrape(self):
        rows = [({"shard": 0, "replica": 0}, 0), ({"shard": 0, "replica": 1}, 2)]
        gauge = CallbackGauge(
            "repro_state", "help", ("shard", "replica"), lambda: rows
        )
        collected = gauge.collect()
        assert len(collected) == 2
        assert collected[1][1] == {"shard": "0", "replica": "1"}
        assert collected[1][2] == 2.0


class TestHistogram:
    def test_bucket_counts_match_sorted_oracle(self):
        histogram = Histogram(
            "repro_lat_seconds", "help", buckets=(0.1, 1.0, 10.0)
        )
        values = [0.05, 0.1, 0.5, 2.0, 50.0]
        for value in values:
            histogram.observe(value)
        cumulative, total, count = histogram.snapshot_key()
        # Oracle: cumulative count of values <= each bound, then +Inf.
        assert cumulative == [
            sum(1 for v in values if v <= 0.1),
            sum(1 for v in values if v <= 1.0),
            sum(1 for v in values if v <= 10.0),
            len(values),
        ]
        assert total == pytest.approx(sum(values))
        assert count == len(values)

    def test_buckets_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("repro_lat_seconds", "help", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("repro_lat_seconds", "help", buckets=(2.0, 1.0))

    def test_collect_emits_cumulative_buckets_sum_count(self):
        histogram = Histogram("repro_lat_seconds", "help", buckets=(1.0,))
        histogram.observe(0.5)
        histogram.observe(3.0)
        samples = {
            (suffix, labels.get("le")): value
            for suffix, labels, value in histogram.collect()
        }
        assert samples[("_bucket", "1")] == 1
        assert samples[("_bucket", "+Inf")] == 2
        assert samples[("_sum", None)] == pytest.approx(3.5)
        assert samples[("_count", None)] == 2

    def test_labelled_histogram(self):
        histogram = Histogram(
            "repro_lat_seconds", "help", label_names=("route",), buckets=(1.0,)
        )
        histogram.labels(route="/v1/query").observe(0.2)
        cumulative, _total, count = histogram.snapshot_key(("/v1/query",))
        assert cumulative == [1, 1]
        assert count == 1


class TestRegistry:
    def _registry(self):
        registry = MetricsRegistry()
        requests = registry.counter(
            "repro_http_requests_total", "Requests.", labels=("route",)
        )
        requests.labels(route="/v1/query").inc(4)
        latency = registry.histogram(
            "repro_lat_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        latency.observe(0.25)
        gauge = registry.gauge("repro_depth", "Depth.")
        gauge.set(3)
        return registry

    def test_render_parses_strictly(self):
        families = parse_prometheus_text(self._registry().render())
        assert families["repro_http_requests_total"]["kind"] == "counter"
        assert families["repro_lat_seconds"]["kind"] == "histogram"
        assert families["repro_depth"]["kind"] == "gauge"
        [sample] = families["repro_http_requests_total"]["samples"]
        assert sample == ("repro_http_requests_total", {"route": "/v1/query"}, 4.0)

    def test_const_labels_merge_into_samples(self):
        registry = MetricsRegistry()
        hits = Counter("repro_cache_hits_total", "Hits.")
        hits.inc(2)
        registry.register(hits, labels={"collection": "plays"})
        families = parse_prometheus_text(registry.render())
        [sample] = families["repro_cache_hits_total"]["samples"]
        assert sample[1] == {"collection": "plays"}
        assert sample[2] == 2.0

    def test_same_family_multiple_collections_single_header(self):
        registry = MetricsRegistry()
        for name in ("a", "b"):
            counter = Counter("repro_cache_hits_total", "Hits.")
            counter.inc()
            registry.register(counter, labels={"collection": name})
        text = registry.render()
        assert text.count("# HELP repro_cache_hits_total") == 1
        assert text.count("# TYPE repro_cache_hits_total") == 1
        families = parse_prometheus_text(text)
        assert len(families["repro_cache_hits_total"]["samples"]) == 2

    def test_conflicting_reregistration_rejected(self):
        registry = MetricsRegistry()
        registry.register(Counter("repro_x_total", "One help."))
        with pytest.raises(ValueError):
            registry.register(Counter("repro_x_total", "Another help."))
        with pytest.raises(ValueError):
            registry.register(Gauge("repro_x_total", "One help."))

    def test_duplicate_registration_is_idempotent(self):
        registry = MetricsRegistry()
        counter = Counter("repro_x_total", "help")
        counter.inc()
        registry.register(counter)
        registry.register(counter)
        families = parse_prometheus_text(registry.render())
        assert len(families["repro_x_total"]["samples"]) == 1

    def test_label_value_escaping_round_trips(self):
        registry = MetricsRegistry()
        counter = Counter("repro_x_total", "help", label_names=("q",))
        nasty = 'quote " slash \\ newline \n end'
        counter.labels(q=nasty).inc()
        registry.register(counter)
        families = parse_prometheus_text(registry.render())
        [sample] = families["repro_x_total"]["samples"]
        assert sample[1]["q"] == nasty

    def test_help_escaping(self):
        registry = MetricsRegistry()
        registry.register(Counter("repro_x_total", "line one\nline two"))
        text = registry.render()
        assert "line one\\nline two" in text
        parse_prometheus_text(text)

    def test_snapshot_is_json_ready(self):
        snapshot = self._registry().snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped["repro_depth"]["samples"][0]["value"] == 3

    def test_parser_rejects_garbage(self):
        with pytest.raises(PromParseError):
            parse_prometheus_text("repro_x_total 1\n")  # no HELP/TYPE
        with pytest.raises(PromParseError):
            parse_prometheus_text(
                "# HELP repro_x_total h\nrepro_x_total 1\n"  # no TYPE
            )
        with pytest.raises(PromParseError):
            parse_prometheus_text(
                "# HELP repro_x_total h\n# TYPE repro_x_total counter\n"
                "repro_x_total nope\n"
            )

    def test_inf_bucket_rendering(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_lat_seconds", "Latency.", buckets=(0.5,)
        )
        histogram.observe(7.0)
        families = parse_prometheus_text(registry.render())
        buckets = [
            (labels["le"], value)
            for name, labels, value in families["repro_lat_seconds"]["samples"]
            if name.endswith("_bucket")
        ]
        assert buckets == [("0.5", 0.0), ("+Inf", 1.0)]
        assert math.isinf(float("inf"))
