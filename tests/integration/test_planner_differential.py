"""Differential acceptance for the cost-based planner.

The contract: for every bundled dataset, on both meet backends and on
monolithic and 2-shard layouts, the planner-chosen access paths must
answer **byte-identically** — column names, rows, and row order — to a
forced path-summary scan (``force_scan=True``), both on the pristine
store and after a randomized live mutate sequence.  Prepared execution
must likewise be indistinguishable from ad-hoc queries with the same
bindings.

Query literals are drawn from the store's actual association values,
so equality probes genuinely hit and the comparison is never
vacuously empty-vs-empty.
"""

import pytest

from repro.exec import (
    SerialExecutor,
    ShardService,
    ShardedCollection,
    compute_shard_plan,
    slice_store,
)
from repro.monet.transform import monet_transform
from repro.query.executor import QueryProcessor
from repro.query.parser import parse_query

from ..write.harness import (
    DATASETS,
    MutationFuzzer,
    apply_step,
    open_live,
    write_source,
)

BACKENDS = ("steered", "indexed")
MUTATION_STEPS = 8
TEMPLATE = "select $a, tag($a) from # $a where $a = $v"


def picked_values(store, count=3):
    """Real association values to probe (quote-free, deterministic)."""
    values = sorted(
        {
            value
            for _pid, relation in store.string_relations()
            for _oid, value in relation
            if value and "'" not in value
        }
    )
    assert values, "dataset has no string associations to probe"
    step = max(1, len(values) // count)
    return values[::step][:count]


def queries_for(store):
    first, middle, last = (picked_values(store) + [""] * 3)[:3]
    return [
        f"select $a, tag($a) from # $a where $a = '{first}'",
        f"select $a, path($a) from # $a where $a = '{middle}'",
        f"select $a from # $a where $a >= '{last}'",
        f"select $a from # $a where $a < '{middle}'",
        f"select distinct tag($a) from # $a "
        f"where $a >= '{first}' and $a <= '{middle}'",
        f"select meet($a,$b) from # $a, # $b "
        f"where $a = '{first}' and $b >= '{middle}'",
    ]


def sharded_pair(store, backend, shards=2):
    """(planner, force-scan) coordinators sharing one set of services."""
    plan = compute_shard_plan(store, shards)
    slices = slice_store(store, plan)
    executor = SerialExecutor(
        [
            ShardService(shard, shard_id=index, backend=backend)
            for index, shard in enumerate(slices)
        ]
    )
    generations = [shard.generation for shard in slices]
    build = lambda force: ShardedCollection(
        plan,
        store.summary,
        executor,
        backend_name=backend,
        generations=generations,
        force_scan=force,
    )
    return build(False), build(True)


def assert_identical(planned, scanned, context):
    assert planned.columns == scanned.columns, context
    assert planned.rows == scanned.rows, context


@pytest.fixture(scope="module")
def stores():
    return {
        name: monet_transform(spec["build"]())
        for name, spec in DATASETS.items()
    }


@pytest.mark.parametrize("dataset", list(DATASETS))
@pytest.mark.parametrize("backend", BACKENDS)
def test_planner_matches_forced_scan_monolithic(stores, dataset, backend):
    store = stores[dataset]
    planner = QueryProcessor(store, None, backend=backend)
    scanner = QueryProcessor(store, None, backend=backend, force_scan=True)
    for text in queries_for(store):
        assert_identical(
            planner.execute(text),
            scanner.execute(text),
            (dataset, backend, text),
        )


@pytest.mark.parametrize("dataset", list(DATASETS))
@pytest.mark.parametrize("backend", BACKENDS)
def test_planner_matches_forced_scan_sharded(stores, dataset, backend):
    store = stores[dataset]
    planned_sc, scanned_sc = sharded_pair(store, backend)
    mono_scan = QueryProcessor(store, None, backend=backend, force_scan=True)
    for text in queries_for(store):
        planned = planned_sc.execute(text)
        scanned = scanned_sc.execute(text)
        assert_identical(planned, scanned, (dataset, backend, text))
        # ... and the sharded scatter-gather agrees with the
        # monolithic reference, closing the triangle.
        assert planned.rows == mono_scan.execute(text).rows, (
            dataset,
            backend,
            text,
        )


@pytest.mark.parametrize("dataset", list(DATASETS))
@pytest.mark.parametrize("backend", BACKENDS)
def test_prepared_matches_adhoc(stores, dataset, backend):
    store = stores[dataset]
    template = parse_query(TEMPLATE)
    processor = QueryProcessor(store, None, backend=backend)
    planned_sc, _ = sharded_pair(store, backend)
    for value in picked_values(store):
        prepared = processor.execute_template(
            template, text=TEMPLATE, bindings={"v": value}
        )
        adhoc = QueryProcessor(store, None, backend=backend).execute(
            TEMPLATE, bindings={"v": value}
        )
        assert_identical(prepared, adhoc, (dataset, backend, value))
        sharded = planned_sc.execute(TEMPLATE, bindings={"v": value})
        assert_identical(sharded, adhoc, (dataset, backend, value))


@pytest.mark.parametrize("dataset", list(DATASETS))
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("shards", (None, 2), ids=("monolithic", "sharded"))
def test_planner_matches_forced_scan_after_mutations(
    tmp_path, dataset, backend, shards
):
    """Live writes: probe answers keep tracking the scan, step by step."""
    source, model = write_source(tmp_path, dataset)
    db = open_live(source, backend=backend, shards=shards)
    try:
        fuzzer = MutationFuzzer(model, dataset, seed=902_000 + hash(dataset) % 97)
        for _ in range(MUTATION_STEPS):
            apply_step(db, model, fuzzer.step())

        if shards is None:
            store = db.store
            planner = db.processor
            scanner = QueryProcessor(
                store, None, backend=backend, force_scan=True
            )
            execute_planned = planner.execute
            execute_scanned = scanner.execute
        else:
            store = model.oracle_store()
            coordinator = db.sharded
            twin = ShardedCollection(
                coordinator.plan,
                coordinator.summary,
                coordinator.executor,
                case_sensitive=coordinator.case_sensitive,
                backend_name=coordinator.backend_name,
                generations=coordinator.generations,
                force_scan=True,
            )
            execute_planned = coordinator.execute
            execute_scanned = twin.execute

        for text in queries_for(store):
            assert_identical(
                execute_planned(text),
                execute_scanned(text),
                (dataset, backend, shards, text),
            )
        for value in picked_values(store):
            assert_identical(
                execute_planned(TEMPLATE, bindings={"v": value}),
                execute_scanned(TEMPLATE, bindings={"v": value}),
                (dataset, backend, shards, "prepared", value),
            )
    finally:
        db.close()
