"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.datamodel.serializer import serialize
from repro.datasets import figure1_document

XML = serialize(figure1_document())


@pytest.fixture()
def xml_file(tmp_path):
    path = tmp_path / "bib.xml"
    path.write_text(XML, encoding="utf-8")
    return str(path)


class TestDescribe:
    def test_basic(self, xml_file, capsys):
        assert main(["describe", xml_file]) == 0
        out = capsys.readouterr().out
        assert "nodes:" in out and "19" in out

    def test_paths_flag(self, xml_file, capsys):
        assert main(["describe", xml_file, "--paths"]) == 0
        out = capsys.readouterr().out
        assert "bibliography/institute/article@key" in out


class TestSearch:
    def test_finds_article(self, xml_file, capsys):
        assert main(["search", xml_file, "Bit", "1999"]) == 0
        out = capsys.readouterr().out
        assert "<article>" in out and "joins=5" in out

    def test_xml_rendering(self, xml_file, capsys):
        assert main(["search", xml_file, "Bit", "1999", "--xml"]) == 0
        out = capsys.readouterr().out
        assert "<lastname>Bit</lastname>" in out

    def test_no_hits_exit_code(self, xml_file, capsys):
        assert main(["search", xml_file, "zz", "qq"]) == 1
        assert "no nearest concepts" in capsys.readouterr().out

    def test_single_term_rejected(self, xml_file, capsys):
        assert main(["search", xml_file, "Bit"]) == 2

    def test_within_filter(self, xml_file, capsys):
        assert main(["search", xml_file, "Bit", "1999", "--within", "4"]) == 1

    def test_limit(self, xml_file, capsys):
        assert main(["search", xml_file, "Hack", "1999", "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("oid=") == 1


class TestQuery:
    def test_meet_query(self, xml_file, capsys):
        code = main(
            [
                "query",
                xml_file,
                "select meet($a,$b) from # $a, # $b "
                "where $a contains 'Bit' and $b contains '1999'",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "<answer>" in out and "article" in out

    def test_empty_result_exit_code(self, xml_file):
        assert (
            main(
                [
                    "query",
                    xml_file,
                    "select $o from zebra $o",
                ]
            )
            == 1
        )

    def test_explain(self, xml_file, capsys):
        assert (
            main(["query", xml_file, "select $o from bibliography/# $o", "--explain"])
            == 0
        )
        assert "plan over" in capsys.readouterr().out


class TestShredAndReload:
    def test_shred_then_search_image(self, xml_file, tmp_path, capsys):
        image = str(tmp_path / "store.json")
        assert main(["shred", xml_file, image]) == 0
        capsys.readouterr()
        # the JSON image is a valid persisted store …
        payload = json.loads(open(image).read())
        assert payload["format"] == "repro-monet-xml"
        # … and directly queryable
        assert main(["search", image, "Bit", "1999"]) == 0
        assert "<article>" in capsys.readouterr().out


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["describe", "/no/such/file.xml"]) == 2
        assert "error:" in capsys.readouterr().err
