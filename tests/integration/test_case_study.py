"""Integration: the §5 DBLP case study at test scale.

"We now want to list all publications in the ICDE proceedings of a
certain year … a full-text search for the strings 'ICDE' and the year
and calculate the meets … with the document root excluded from the set
of possible results."
"""

from collections import Counter

from repro.datasets.dblp import expected_icde_publications


class TestSingleYear:
    def test_icde_1999_mostly_inproceedings(self, dblp_engine, dblp_small_config):
        concepts = dblp_engine.nearest_concepts("ICDE", "1999", exclude_root=True)
        tags = Counter(c.tag for c in concepts)
        expected = expected_icde_publications(dblp_small_config, [1999])
        assert tags["inproceedings"] == expected
        # "there were just two false positives" — ours are the per-venue
        # proceedings entries; they stay a small constant per year.
        false_positives = sum(
            count for tag, count in tags.items() if tag != "inproceedings"
        )
        assert false_positives <= len(dblp_small_config.venues)

    def test_publications_actually_match(self, dblp_engine, dblp_store):
        from repro.monet.reassembly import object_text

        concepts = dblp_engine.nearest_concepts("ICDE", "1997", exclude_root=True)
        pubs = [c for c in concepts if c.tag == "inproceedings"]
        for concept in pubs:
            text = object_text(dblp_store, concept.oid)
            assert "ICDE" in text and "1997" in text


class TestIntervalWidening:
    def test_cardinality_monotone_in_interval(self, dblp_engine):
        sizes = []
        for first_year in (1999, 1997, 1995, 1990, 1984):
            years = [str(y) for y in range(first_year, 2000)]
            concepts = dblp_engine.nearest_concepts(
                "ICDE", *years, exclude_root=True
            )
            sizes.append(len(concepts))
        assert sizes == sorted(sizes)

    def test_icde_1985_gap_visible(self, dblp_engine, dblp_small_config):
        """Widening across 1985 adds no ICDE publications — the flat
        step of Figure 7."""
        per_pub_counts = {}
        for first_year in (1986, 1985, 1984):
            years = [str(y) for y in range(first_year, 2000)]
            concepts = dblp_engine.nearest_concepts(
                "ICDE", *years, exclude_root=True
            )
            per_pub_counts[first_year] = sum(
                1 for c in concepts if c.tag == "inproceedings"
            )
        step_1985 = per_pub_counts[1985] - per_pub_counts[1986]
        step_1984 = per_pub_counts[1984] - per_pub_counts[1985]
        assert step_1985 == 0  # no ICDE 1985
        assert step_1984 == dblp_small_config.papers_per_proceedings


class TestMeetXConfiguration:
    def test_without_root_exclusion_root_can_surface(self, dblp_engine):
        """Orphan hits from different entries meet at the dblp root;
        meet_X with the root excluded removes exactly those."""
        with_root = dblp_engine.nearest_concepts("ICDE", "1999")
        without_root = dblp_engine.nearest_concepts(
            "ICDE", "1999", exclude_root=True
        )
        root_hits = [c for c in with_root if c.tag == "dblp"]
        assert len(with_root) - len(without_root) == len(root_hits)
        assert all(c.tag != "dblp" for c in without_root)
