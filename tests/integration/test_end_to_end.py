"""Integration: raw XML text → store → search → meet → presentation."""

from repro.core import NearestConceptEngine
from repro.datamodel.parser import parse_document
from repro.datamodel.serializer import serialize
from repro.monet import monet_transform
from repro.monet.reassembly import reassemble_subtree
from repro.monet.storage import dumps, loads

CATALOG = """
<catalog>
  <section name="databases">
    <book isbn="1-55860-622-X">
      <title>Monet and the Art of Columns</title>
      <author><first>Peter</first><last>Boncz</last></author>
      <published>1999</published>
    </book>
    <book isbn="0-201-53771-0">
      <title>Foundations of Databases</title>
      <author>Serge Abiteboul</author>
      <published>1995</published>
    </book>
  </section>
  <section name="web">
    <book isbn="9-999999-99-9">
      <title>Semistructured Data on the Web</title>
      <author>Dana Florescu</author>
      <published>1999</published>
    </book>
  </section>
</catalog>
"""


class TestFullPipeline:
    def setup_method(self):
        self.store = monet_transform(parse_document(CATALOG))
        self.engine = NearestConceptEngine(self.store)

    def test_unknown_markup_keyword_query(self):
        """A user ignorant of the schema finds Boncz's 1999 book."""
        concepts = self.engine.nearest_concepts("Boncz", "1999")
        assert concepts
        top = concepts[0]
        assert top.tag == "book"
        assert "Monet" in self.engine.snippet(top)

    def test_result_type_depends_on_instance(self):
        """The headline claim: the result *type* is not specified by
        the user and varies with the terms."""
        book = self.engine.nearest_concepts("Boncz", "1999")[0]
        author = self.engine.nearest_concepts("Peter", "Boncz")[0]
        assert book.tag == "book"
        assert author.tag == "author"

    def test_cross_section_terms_meet_high(self):
        concepts = self.engine.nearest_concepts("Abiteboul", "Florescu")
        assert concepts[0].tag == "catalog"

    def test_exclude_root_drops_top_level_concept(self):
        concepts = self.engine.nearest_concepts(
            "Abiteboul", "Florescu", exclude_root=True
        )
        assert concepts == []

    def test_browse_result_as_xml(self):
        top = self.engine.nearest_concepts("Boncz", "1999")[0]
        xml = self.engine.to_xml(top)
        assert xml.startswith("<book")
        assert "Boncz" in xml

    def test_persistence_round_trip_preserves_answers(self):
        clone = loads(dumps(self.store))
        engine = NearestConceptEngine(clone)
        original = [c.oid for c in self.engine.nearest_concepts("Boncz", "1999")]
        reloaded = [c.oid for c in engine.nearest_concepts("Boncz", "1999")]
        assert original == reloaded

    def test_reassembly_round_trips_through_serializer(self):
        rebuilt = reassemble_subtree(self.store, self.store.root_oid)
        reparsed = monet_transform(
            parse_document(serialize(parse_document(CATALOG)))
        )
        assert reparsed.node_count == self.store.node_count
        assert rebuilt.subtree_size() == self.store.node_count


class TestQueryLanguageAgainstEngine:
    def setup_method(self):
        self.store = monet_transform(parse_document(CATALOG))
        self.engine = NearestConceptEngine(self.store)

    def test_meet_query_matches_engine(self):
        from repro.query import run_query

        result = run_query(
            self.store,
            "select meet($a, $b) from catalog/# $a, catalog/# $b "
            "where $a contains 'Boncz' and $b contains '1999'",
        )
        engine_oids = {
            c.oid for c in self.engine.nearest_concepts("Boncz", "1999")
        }
        assert set(result.column("meet($a, $b)")) == engine_oids

    def test_enumeration_gives_schema_discovery(self):
        from repro.query import run_query

        result = run_query(
            self.store, "select distinct %T from catalog/section/%T $o"
        )
        assert set(result.column("%T")) == {"book"}
