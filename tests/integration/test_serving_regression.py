"""Serving-path regression tests: repeated queries must reuse every
derived structure.

The contract this file pins down: answering a query stream against one
loaded store builds the full-text index once, builds the Euler-RMQ LCA
index once (indexed backend), and — with the result cache enabled —
computes each distinct (normalized) query once.  Invalidating the
store drops all of it, including the result cache.
"""

import pytest

from repro.core.engine import NearestConceptEngine
from repro.core.lca_index import (
    clear_lca_index_cache,
    lca_index_cache_info,
)
from repro.core.result_cache import ResultCache
from repro.datasets import figure1_document
from repro.fulltext.index import (
    clear_fulltext_index_cache,
    fulltext_index_cache_info,
)
from repro.monet.transform import monet_transform
from repro.query.executor import QueryProcessor


@pytest.fixture()
def store():
    # A private store: the cache counters below must not be polluted
    # by the session-scoped fixture stores.
    return monet_transform(figure1_document())


@pytest.fixture(autouse=True)
def _isolated_caches():
    clear_fulltext_index_cache()
    clear_lca_index_cache()
    yield
    clear_fulltext_index_cache()
    clear_lca_index_cache()


class TestNoRebuilds:
    def test_consecutive_queries_share_both_indexes(self, store):
        engine = NearestConceptEngine(store, backend="indexed")
        first = engine.nearest_concepts("Bit", "1999")
        fulltext_after_first = fulltext_index_cache_info()
        lca_after_first = lca_index_cache_info()
        assert fulltext_after_first.builds == 1
        assert lca_after_first.builds == 1

        second = engine.nearest_concepts("Bit", "1999")
        fulltext_after_second = fulltext_index_cache_info()
        lca_after_second = lca_index_cache_info()
        assert second == first
        # No rebuilds: only the hit counters moved.
        assert fulltext_after_second.builds == 1
        assert lca_after_second.builds == 1
        assert fulltext_after_second.hits > fulltext_after_first.hits
        assert lca_after_second.hits > lca_after_first.hits

    def test_two_engines_share_one_fulltext_build(self, store):
        NearestConceptEngine(store).nearest_concepts("Bit", "1999")
        NearestConceptEngine(store).nearest_concepts("Bit", "1999")
        assert fulltext_index_cache_info().builds == 1

    def test_invalidate_rebuilds_lazily_once(self, store):
        engine = NearestConceptEngine(store, backend="indexed")
        engine.nearest_concepts("Bit", "1999")
        store.invalidate_caches()
        engine.nearest_concepts("Bit", "1999")
        engine.nearest_concepts("Bit", "1999")
        assert fulltext_index_cache_info().builds == 2
        assert lca_index_cache_info().builds == 2


class TestEngineResultCache:
    def test_second_call_is_a_cache_hit(self, store):
        engine = NearestConceptEngine(store, backend="indexed", cache=64)
        first = engine.nearest_concepts("Bit", "1999")
        second = engine.nearest_concepts("Bit", "1999")
        assert second == first
        info = engine.cache_info()
        assert info.hits == 1
        assert info.misses == 1

    def test_term_order_and_duplicates_normalize(self, store):
        engine = NearestConceptEngine(store, cache=64)
        first = engine.nearest_concepts("Bit", "1999")
        assert engine.nearest_concepts("1999", "Bit") == first
        assert engine.nearest_concepts("Bit", "1999", "Bit") == first
        assert engine.cache_info().hits == 2

    def test_distinct_options_are_distinct_entries(self, store):
        engine = NearestConceptEngine(store, cache=64)
        engine.nearest_concepts("Bit", "1999")
        engine.nearest_concepts("Bit", "1999", limit=1)
        engine.nearest_concepts("Bit", "1999", exclude_root=True)
        assert engine.cache_info().misses == 3

    def test_cached_list_is_a_private_copy(self, store):
        engine = NearestConceptEngine(store, cache=64)
        first = engine.nearest_concepts("Bit", "1999")
        first.clear()
        assert engine.nearest_concepts("Bit", "1999") != []

    def test_invalidate_caches_drops_result_cache(self, store):
        engine = NearestConceptEngine(store, backend="indexed", cache=64)
        engine.nearest_concepts("Bit", "1999")
        assert len(engine.result_cache) == 1
        store.invalidate_caches()
        # The next query syncs to the new generation: the stale entry
        # is gone and the query recomputes (a miss, then one entry).
        engine.nearest_concepts("Bit", "1999")
        info = engine.cache_info()
        assert info.hits == 0
        assert info.misses == 2
        assert info.currsize == 1

    def test_results_identical_with_and_without_cache(self, store):
        plain = NearestConceptEngine(store, backend="indexed")
        caching = NearestConceptEngine(store, backend="indexed", cache=64)
        for _ in range(2):
            for terms in [("Bit", "1999"), ("Bob", "Byte"), ("Hack", "1999")]:
                assert caching.nearest_concepts(*terms) == plain.nearest_concepts(
                    *terms
                )

    def test_shared_cache_across_engines(self, store):
        shared = ResultCache(maxsize=32)
        NearestConceptEngine(store, cache=shared).nearest_concepts("Bit", "1999")
        NearestConceptEngine(store, cache=shared).nearest_concepts("Bit", "1999")
        assert shared.cache_info().hits == 1

    def test_shared_cache_never_crosses_case_modes(self, store):
        """Differently configured engines sharing one cache must not
        serve each other's answers (the key embeds the case mode)."""
        shared = ResultCache(maxsize=32)
        sensitive = NearestConceptEngine(
            store, case_sensitive=True, cache=shared
        )
        folded = NearestConceptEngine(store, cache=shared)
        # Case-sensitive: "bit" misses, only the two "1999" hits meet;
        # case-folded: "bit" matches "Bit", adding cross-term concepts.
        from_sensitive = sensitive.nearest_concepts("bit", "1999")
        from_folded = folded.nearest_concepts("bit", "1999")
        assert from_sensitive != from_folded
        assert shared.cache_info().hits == 0
        assert shared.cache_info().misses == 2


class TestTopKFastPath:
    def test_limit_equals_sort_then_truncate(self):
        """The heap-selected top-k (cheap keys, winners-only annotation)
        must equal the full sort-then-truncate pipeline exactly — the
        OID tiebreak makes sort_key a strict total order."""
        import random as random_module

        from repro.datasets.randomtree import random_document
        from repro.datasets.textpool import TECH_NOUNS

        store = monet_transform(random_document(11, nodes=600))
        engine = NearestConceptEngine(store, backend="indexed")
        words = list(TECH_NOUNS)[:8]
        rng = random_module.Random(5)
        for _ in range(15):
            terms = rng.sample(words, 2)
            within = rng.choice([None, 3, 8])
            full = engine.nearest_concepts(*terms, within=within)
            for k in (1, 3, 7):
                fast = engine.nearest_concepts(*terms, within=within, limit=k)
                assert fast == full[:k]


class TestProcessorResultCache:
    QUERY = (
        "select meet($a, $b) from # $a, # $b "
        "where $a contains 'Bit' and $b contains '1999'"
    )

    def test_repeat_query_hits(self, store):
        processor = QueryProcessor(store, cache=16)
        first = processor.execute(self.QUERY)
        second = processor.execute("  " + self.QUERY.replace("  ", " ") + " ")
        assert second.rows == first.rows
        assert processor.cache_info().hits == 1

    def test_cached_result_is_a_private_copy(self, store):
        processor = QueryProcessor(store, cache=16)
        first = processor.execute(self.QUERY)
        first.rows.clear()
        assert processor.execute(self.QUERY).rows

    def test_invalidate_drops_processor_cache(self, store):
        processor = QueryProcessor(store, cache=16)
        processor.execute(self.QUERY)
        store.invalidate_caches()
        processor.execute(self.QUERY)
        info = processor.cache_info()
        assert info.hits == 0
        assert info.misses == 2
