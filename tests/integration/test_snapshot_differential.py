"""Differential acceptance: snapshot-loaded stores answer identically.

For every bundled dataset, ``nearest_concepts`` answer sets *and*
ranking order must be byte-identical between a freshly built store and
a snapshot-loaded one, on both the ``steered`` and ``indexed``
backends — the satellite contract that persistence changes nothing
about semantics.
"""

import pytest

from repro.core.engine import NearestConceptEngine
from repro.datasets import (
    DblpConfig,
    MultimediaConfig,
    PlaysConfig,
    dblp_document,
    figure1_document,
    multimedia_document,
    plays_document,
)
from repro.datasets.randomtree import random_document
from repro.monet.transform import monet_transform
from repro.snapshot import read_snapshot, write_snapshot

DATASETS = {
    "figure1": (
        lambda: figure1_document(),
        [("Bit", "1999"), ("Bob", "Byte"), ("Hack", "1999")],
    ),
    "plays": (
        lambda: plays_document(PlaysConfig(plays=2, acts_per_play=2, scenes_per_act=2)),
        [("crown", "ghost"), ("love", "storm"), ("king", "night")],
    ),
    "dblp": (
        lambda: dblp_document(DblpConfig(papers_per_proceedings=4, articles_per_year=2)),
        [("ICDE", "1999"), ("VLDB", "1994"), ("SIGMOD", "1988")],
    ),
    "multimedia": (
        lambda: multimedia_document(MultimediaConfig(items=8)),
        [("wavelet", "texture"), ("motion", "region")],
    ),
    "random": (
        lambda: random_document(7, nodes=800, max_children=4),
        [("wavelet", "texture"), ("histogram", "contour")],
    ),
}


@pytest.fixture(scope="module")
def snapshots(tmp_path_factory):
    """(fresh store, loaded store) per dataset, built once."""
    root = tmp_path_factory.mktemp("differential")
    pairs = {}
    for name, (build, _queries) in DATASETS.items():
        store = monet_transform(build())
        bundle = root / f"{name}.snap"
        write_snapshot(store, bundle)
        pairs[name] = (store, read_snapshot(bundle).store)
    return pairs


@pytest.mark.parametrize("dataset", list(DATASETS))
@pytest.mark.parametrize("backend", ["steered", "indexed"])
def test_answers_and_ranking_identical(snapshots, dataset, backend):
    fresh_store, loaded_store = snapshots[dataset]
    _build, queries = DATASETS[dataset]
    fresh = NearestConceptEngine(fresh_store, backend=backend)
    loaded = NearestConceptEngine(loaded_store, backend=backend)
    for terms in queries:
        for options in (
            {},
            {"limit": 5},
            {"exclude_root": True, "require_all_terms": True},
        ):
            expected = fresh.nearest_concepts(*terms, **options)
            actual = loaded.nearest_concepts(*terms, **options)
            # Dataclass equality covers oid, path, origins, terms,
            # joins, spread and depth; list equality covers ranking
            # order.  Byte-identical or bust.
            assert actual == expected, (
                f"{dataset}/{backend}/{terms}/{options}: snapshot-loaded "
                f"store diverged from the freshly built one"
            )


@pytest.mark.parametrize("dataset", list(DATASETS))
def test_batch_entry_point_identical(snapshots, dataset):
    fresh_store, loaded_store = snapshots[dataset]
    _build, queries = DATASETS[dataset]
    fresh = NearestConceptEngine(fresh_store, backend="indexed")
    loaded = NearestConceptEngine(loaded_store, backend="indexed")
    assert loaded.nearest_concepts_batch(queries, limit=3) == (
        fresh.nearest_concepts_batch(queries, limit=3)
    )
