"""End-to-end ``--backend`` coverage: the CLI must produce identical
answers with either backend, on XML inputs and persisted Monet images,
and the per-store LCA index cache must be rebuilt when a store is
rebuilt or invalidated.
"""

import pytest

from repro.cli import main
from repro.core.engine import NearestConceptEngine
from repro.core.lca_index import (
    clear_lca_index_cache,
    get_lca_index,
    lca_index_cache_info,
)
from repro.datamodel.serializer import serialize
from repro.datasets import figure1_document
from repro.monet import storage
from repro.monet.transform import monet_transform

XML = serialize(figure1_document())

QUERY = (
    "select meet($a,$b) from # $a, # $b "
    "where $a contains 'Bit' and $b contains '1999'"
)


@pytest.fixture()
def xml_file(tmp_path):
    path = tmp_path / "bib.xml"
    path.write_text(XML, encoding="utf-8")
    return str(path)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_lca_index_cache()
    yield
    clear_lca_index_cache()


class TestSearchBackendFlag:
    def test_indexed_matches_steered(self, xml_file, capsys):
        assert main(["search", xml_file, "Bit", "1999"]) == 0
        steered_out = capsys.readouterr().out
        assert main(["search", xml_file, "Bit", "1999", "--backend", "indexed"]) == 0
        indexed_out = capsys.readouterr().out
        assert indexed_out == steered_out
        assert "<article>" in indexed_out and "joins=5" in indexed_out

    def test_explicit_steered_accepted(self, xml_file, capsys):
        assert main(["search", xml_file, "Bit", "1999", "--backend", "steered"]) == 0
        assert "joins=5" in capsys.readouterr().out

    def test_unknown_backend_rejected(self, xml_file):
        with pytest.raises(SystemExit):
            main(["search", xml_file, "Bit", "1999", "--backend", "quantum"])

    def test_indexed_on_persisted_image(self, xml_file, tmp_path, capsys):
        image = str(tmp_path / "bib.json")
        assert main(["shred", xml_file, image]) == 0
        capsys.readouterr()
        assert main(["search", image, "Bit", "1999", "--backend", "indexed"]) == 0
        assert "<article>" in capsys.readouterr().out


class TestQueryBackendFlag:
    def test_indexed_matches_steered(self, xml_file, capsys):
        assert main(["query", xml_file, QUERY]) == 0
        steered_out = capsys.readouterr().out
        assert main(["query", xml_file, QUERY, "--backend", "indexed"]) == 0
        assert capsys.readouterr().out == steered_out


class TestIndexCacheLifecycle:
    def test_cli_indexed_search_builds_an_index(self, xml_file):
        assert lca_index_cache_info().builds == 0
        assert main(["search", xml_file, "Bit", "1999", "--backend", "indexed"]) == 0
        assert lca_index_cache_info().builds == 1

    def test_rebuilt_store_gets_fresh_index(self, xml_file, tmp_path):
        image = str(tmp_path / "bib.json")
        assert main(["shred", xml_file, image]) == 0

        first_store = storage.load(image)
        engine = NearestConceptEngine(first_store, backend="indexed")
        engine.nearest_concepts("Bit", "1999")
        assert lca_index_cache_info().builds == 1

        # Same store, same generation: the cached index is reused.
        engine.nearest_concepts("Hack", "1999")
        assert lca_index_cache_info().builds == 1
        assert lca_index_cache_info().hits >= 1

        # Reloading the image is a rebuild: a distinct store object
        # (new generation) must not see the old index.
        second_store = storage.load(image)
        second_engine = NearestConceptEngine(second_store, backend="indexed")
        assert second_engine.nearest_concepts(
            "Bit", "1999"
        ) == engine.nearest_concepts("Bit", "1999")
        assert lca_index_cache_info().builds == 2

    def test_invalidate_caches_forces_rebuild(self):
        store = monet_transform(figure1_document())
        first = get_lca_index(store)
        assert get_lca_index(store) is first
        store.invalidate_caches()
        second = get_lca_index(store)
        assert second is not first
        assert lca_index_cache_info().builds == 2
        # The rebuilt index still answers identically.
        engine = NearestConceptEngine(store, backend="indexed")
        assert engine.nearest_concepts("Bit", "1999")[0].tag == "article"
