"""Smoke tests: every shipped example runs and prints its key result.

Guards deliverable (b): the examples are living documentation; if an
API change breaks one, this suite fails with the example's stderr.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: example file → fragments its stdout must contain.
EXPECTATIONS = {
    "quickstart.py": ["nearest concepts", "<album>", "Kind of Blue"],
    "bibliography_search.py": [
        "meet2('Ben', 'Bit')",
        "<author>",
        "<result> article",
        "Mr. Bit wrote an article in 1999",
    ],
    "dblp_case_study.py": [
        "inproceedings",
        "1984-1999",
        "1985 gap",
    ],
    "multimedia_exploration.py": [
        "schema discovery",
        "shortest path",
        "within 6 joins",
    ],
    "query_language_demo.py": [
        "meet() aggregation",
        "explain",
        "plan over",
    ],
    "extensions_tour.py": [
        "store statistics",
        "reference edges",
        "broadened",
        "IR re-ranking",
    ],
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{name} exited {result.returncode}\nstderr:\n{result.stderr}"
    )
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTATIONS))
def test_example_runs_and_reports(name):
    stdout = run_example(name)
    for fragment in EXPECTATIONS[name]:
        assert fragment in stdout, f"{name}: missing {fragment!r}"


def test_every_example_is_covered():
    shipped = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert shipped == set(EXPECTATIONS)
