"""Edge cases and stress shapes: deep chains, wide fans, unicode,
degenerate documents.  Everything in the pipeline is iterative, so
none of these may hit recursion limits.
"""

import sys

import pytest

from repro.core import NearestConceptEngine, meet2_traced
from repro.datamodel.builder import DocumentBuilder
from repro.datamodel.parser import parse_document
from repro.datamodel.serializer import serialize
from repro.monet import monet_transform
from repro.monet.storage import dumps, loads


class TestDeepChain:
    DEPTH = 4000  # far beyond the default recursion limit

    @pytest.fixture(scope="class")
    def deep_store(self):
        builder = DocumentBuilder("root")
        for _ in range(self.DEPTH):
            builder.down("level")
        builder.text("needle bottom")
        doc = builder.build()
        return monet_transform(doc)

    def test_transform_survives(self, deep_store):
        assert deep_store.node_count == self.DEPTH + 2  # + cdata node
        assert deep_store.depth_of(deep_store.last_oid) == self.DEPTH + 2

    def test_meet_along_the_chain(self, deep_store):
        bottom = deep_store.last_oid
        result = meet2_traced(deep_store, bottom, deep_store.root_oid)
        assert result.oid == deep_store.root_oid
        assert result.joins == self.DEPTH + 1

    def test_serialization_is_iterative(self, deep_store):
        assert self.DEPTH < sys.getrecursionlimit() * 10
        from repro.monet.reassembly import reassemble_subtree

        rebuilt = reassemble_subtree(deep_store, deep_store.root_oid)
        text = serialize(parse_document(serialize_via(rebuilt)))
        assert "needle bottom" in text

    def test_storage_roundtrip(self, deep_store):
        clone = loads(dumps(deep_store))
        assert clone.node_count == deep_store.node_count


def serialize_via(node):
    from repro.datamodel.serializer import serialize_node

    return serialize_node(node)


class TestWideFan:
    WIDTH = 5000

    @pytest.fixture(scope="class")
    def wide_store(self):
        builder = DocumentBuilder("root")
        for index in range(self.WIDTH):
            builder.leaf("item", f"value{index}")
        return monet_transform(builder.build())

    def test_children_in_order(self, wide_store):
        children = wide_store.children_of(wide_store.root_oid)
        assert len(children) == self.WIDTH
        ranks = [wide_store.rank_of(oid) for oid in children]
        assert ranks == list(range(self.WIDTH))

    def test_meet_of_first_and_last_leaf(self, wide_store):
        children = wide_store.children_of(wide_store.root_oid)
        result = meet2_traced(wide_store, children[0], children[-1])
        assert result.oid == wide_store.root_oid
        assert result.joins == 2

    def test_search_over_wide_fan(self, wide_store):
        engine = NearestConceptEngine(wide_store)
        concepts = engine.nearest_concepts("value0", "value4999")
        assert [c.oid for c in concepts] == [wide_store.root_oid]


class TestDegenerate:
    def test_single_node_document(self):
        store = monet_transform(DocumentBuilder("only").build())
        assert store.node_count == 1
        assert meet2_traced(store, 0, 0).oid == 0
        engine = NearestConceptEngine(store)
        assert engine.nearest_concepts("a", "b") == []

    def test_root_with_text_only(self):
        store = monet_transform(parse_document("<r>two words</r>"))
        engine = NearestConceptEngine(store)
        (concept,) = engine.nearest_concepts("two", "words")
        assert concept.tag == "cdata"

    def test_empty_strings_indexed_harmlessly(self):
        store = monet_transform(parse_document('<r a=""><b/></r>'))
        engine = NearestConceptEngine(store)
        assert engine.term_hits("anything").oids() == set()


class TestUnicode:
    XML = """
    <библиотека>
      <книга год="1999"><автор>Фёдор Достоевский</автор></книга>
      <livre année="1999"><auteur>José Saramago</auteur></livre>
    </библиотека>
    """

    def test_unicode_tags_and_text(self):
        store = monet_transform(parse_document(self.XML))
        engine = NearestConceptEngine(store)
        concepts = engine.nearest_concepts("Фёдор", "Достоевский")
        assert len(concepts) == 1
        assert concepts[0].tag == "cdata"

    def test_unicode_roundtrip_through_storage(self):
        store = monet_transform(parse_document(self.XML))
        clone = loads(dumps(store))
        engine = NearestConceptEngine(clone)
        assert engine.term_hits("Saramago").oids()

    def test_unicode_paths_render(self):
        store = monet_transform(parse_document(self.XML))
        assert any("книга" in name for name in store.relation_names())


class TestMixedDocumentShapes:
    def test_recursive_labels(self):
        """section/section/section … same label at every depth."""
        xml = "<s><s><s><t>deep</t></s></s><s><t>shallow</t></s></s>"
        store = monet_transform(parse_document(xml))
        engine = NearestConceptEngine(store)
        (concept,) = engine.nearest_concepts("deep", "shallow")
        assert store.depth_of(concept.oid) == 1  # the outermost s

    def test_same_term_everywhere(self):
        xml = "<r><a>x</a><b>x</b><c>x</c></r>"
        store = monet_transform(parse_document(xml))
        engine = NearestConceptEngine(store)
        # single term twice: hits are the same set; Fig. 5 semantics
        # still finds the root as the cluster of the three x's
        from repro.core import group_by_pid, meet_general

        hits = sorted(engine.term_hits("x").oids())
        meets = meet_general(store, group_by_pid(store, hits))
        assert [m.oid for m in meets] == [store.root_oid]
