"""Integration: the Figure 6 experiment wiring (markers + meet cost).

Checks the experimental *setup* the bench relies on: marker pairs sit
at exact distances, the meet over their hits returns the planted fork,
and the meet's join count equals the planted distance.
"""

import pytest

from repro.core import NearestConceptEngine
from repro.core.meet_pair import meet2_traced
from repro.fulltext.search import SearchEngine


@pytest.fixture(scope="module")
def engine(multimedia_planted):
    store, _planted = multimedia_planted
    return NearestConceptEngine(store)


class TestMarkerMeets:
    def test_meet_joins_equal_planted_distance(self, multimedia_planted):
        store, planted = multimedia_planted
        search = SearchEngine(store)
        for distance, (terma, termb) in planted.items():
            (hita,) = search.find(terma).oids()
            (hitb,) = search.find(termb).oids()
            result = meet2_traced(store, hita, hitb)
            assert result.joins == distance

    def test_pipeline_finds_the_probe(self, multimedia_planted, engine):
        store, planted = multimedia_planted
        for distance, (terma, termb) in planted.items():
            concepts = engine.nearest_concepts(terma, termb)
            assert len(concepts) == 1
            concept = concepts[0]
            assert concept.joins == distance
            label = store.summary.label(store.pid_of(concept.oid))
            assert label in {"probe", "cdata"}

    def test_distance_zero_meet_is_the_association(self, multimedia_planted, engine):
        _store, planted = multimedia_planted
        terma, termb = planted[0]
        (concept,) = engine.nearest_concepts(terma, termb)
        assert concept.joins == 0
        assert concept.tag == "cdata"

    def test_noise_terms_do_not_interfere(self, multimedia_planted, engine):
        """Markers are unique: searching them returns exactly one hit
        each even inside the noisy corpus."""
        _store, planted = multimedia_planted
        for terma, termb in planted.values():
            assert len(engine.term_hits(terma)) == 1
            assert len(engine.term_hits(termb)) == 1
