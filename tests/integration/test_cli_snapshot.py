"""Integration tests: the snapshot CLI surface and catalog preference."""

import pytest

from repro.cli import main
from repro.datamodel.serializer import serialize
from repro.datasets import figure1_document

XML = serialize(figure1_document())


@pytest.fixture()
def xml_file(tmp_path):
    path = tmp_path / "bib.xml"
    path.write_text(XML, encoding="utf-8")
    return str(path)


@pytest.fixture()
def catalog_dir(tmp_path):
    return str(tmp_path / "catalog")


@pytest.fixture()
def built(xml_file, catalog_dir, capsys):
    assert main(["snapshot", "build", xml_file, "bib", "--catalog", catalog_dir]) == 0
    capsys.readouterr()
    return catalog_dir


class TestSnapshotCommands:
    def test_build_reports_metadata(self, xml_file, catalog_dir, capsys):
        assert main(
            ["snapshot", "build", xml_file, "--catalog", catalog_dir]
        ) == 0
        out = capsys.readouterr().out
        # Default collection name is the source stem.
        assert "bib.snap" in out and "19 nodes" in out and "generation 1" in out

    def test_ls(self, built, capsys):
        assert main(["snapshot", "ls", "--catalog", built]) == 0
        out = capsys.readouterr().out
        assert "bib: 19 nodes" in out

    def test_ls_empty(self, tmp_path, capsys):
        catalog = tmp_path / "empty-cat"
        catalog.mkdir()
        assert main(["snapshot", "ls", "--catalog", str(catalog)]) == 0
        assert "no collections" in capsys.readouterr().out

    def test_load_by_name_and_by_file(self, built, capsys):
        assert main(["snapshot", "load", "bib", "--catalog", built]) == 0
        assert "zero index rebuilds" in capsys.readouterr().out
        bundle = f"{built}/bib.snap"
        assert main(["snapshot", "load", bundle, "--mmap"]) == 0
        assert "19 nodes" in capsys.readouterr().out

    def test_drop(self, built, capsys):
        assert main(["snapshot", "drop", "bib", "--catalog", built]) == 0
        assert main(["snapshot", "ls", "--catalog", built]) == 0
        assert "no collections" in capsys.readouterr().out

    def test_rebuild_bumps_generation(self, built, xml_file, capsys):
        assert main(
            ["snapshot", "build", xml_file, "bib", "--catalog", built]
        ) == 0
        assert "generation 2" in capsys.readouterr().out

    def test_load_unknown_collection_fails(self, built, capsys):
        assert main(["snapshot", "load", "ghost", "--catalog", built]) == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_bundle_reports_error(self, built, tmp_path, capsys):
        from pathlib import Path

        bundle = Path(built) / "bib.snap"
        data = bytearray(bundle.read_bytes())
        data[len(data) // 2] ^= 0xFF
        bundle.write_bytes(bytes(data))
        assert main(["snapshot", "load", "bib", "--catalog", built]) == 2
        assert "checksum failure" in capsys.readouterr().err


class TestServeFromSnapshot:
    def test_search_snapshot_flag(self, built, capsys):
        assert main(
            ["search", "--snapshot", "bib", "--catalog", built, "Bit", "1999"]
        ) == 0
        out = capsys.readouterr().out
        assert "<article>" in out and "joins=5" in out

    def test_search_snap_file_source(self, built, capsys):
        assert main(["search", f"{built}/bib.snap", "Bit", "1999"]) == 0
        assert "<article>" in capsys.readouterr().out

    def test_query_snapshot_plus_source_is_rejected(self, built, capsys):
        # A source that would be silently ignored is an error instead.
        assert main(
            ["query", "--snapshot", "bib", "--catalog", built,
             "ghost.xml", "select $a from # $a"]
        ) == 2
        assert "pass only the query string" in capsys.readouterr().err

    def test_describe_and_shred_report_load_path(
        self, built, xml_file, tmp_path, capsys
    ):
        assert main(
            ["describe", xml_file, "--catalog", built, "--stats"]
        ) == 0
        captured = capsys.readouterr()
        assert "loaded via snapshot" in captured.err and "nodes:" in captured.out
        image = str(tmp_path / "out.json")
        assert main(
            ["shred", xml_file, image, "--catalog", built, "--stats"]
        ) == 0
        assert "loaded via snapshot" in capsys.readouterr().err

    def test_query_snapshot_flag(self, built, capsys):
        query = (
            "select meet($a,$b) from # $a, # $b "
            "where $a contains 'Bit' and $b contains '1999'"
        )
        assert main(["query", "--snapshot", "bib", "--catalog", built, query]) == 0
        assert "article" in capsys.readouterr().out

    def test_case_sensitive_bundle_serves_without_rebuild(
        self, xml_file, catalog_dir, capsys
    ):
        # Serving inherits the bundle's case mode (and the indexed
        # backend), so a --case-sensitive build still starts warm.
        from repro.core.lca_index import (
            clear_lca_index_cache,
            lca_index_cache_info,
        )
        from repro.fulltext.index import (
            clear_fulltext_index_cache,
            fulltext_index_cache_info,
        )

        assert main(
            ["snapshot", "build", xml_file, "bib", "--catalog", catalog_dir,
             "--case-sensitive"]
        ) == 0
        capsys.readouterr()
        clear_lca_index_cache()
        clear_fulltext_index_cache()
        assert main(
            ["search", "--snapshot", "bib", "--catalog", catalog_dir,
             "Bit", "1999"]
        ) == 0
        assert "<article>" in capsys.readouterr().out
        assert fulltext_index_cache_info().builds == 0
        assert lca_index_cache_info().builds == 0

    def test_explicit_flags_override_bundle_defaults(
        self, built, capsys
    ):
        assert main(
            ["search", "--snapshot", "bib", "--catalog", built,
             "Bit", "1999", "--backend", "steered", "--no-case-sensitive"]
        ) == 0
        assert "<article>" in capsys.readouterr().out

    def test_search_without_source_or_snapshot_fails(self, capsys):
        # A single positional parses as a term, not a source.
        assert main(["search", "Bit"]) == 2
        assert "needs a source" in capsys.readouterr().err


class TestCatalogPreference:
    def test_xml_source_prefers_fresh_catalog_hit(self, built, xml_file, capsys):
        assert main(
            ["search", xml_file, "Bit", "1999", "--catalog", built, "--stats"]
        ) == 0
        captured = capsys.readouterr()
        assert "loaded via snapshot" in captured.err
        assert "<article>" in captured.out

    def test_xml_source_parses_without_catalog(self, xml_file, tmp_path, capsys):
        assert main(
            [
                "search", xml_file, "Bit", "1999",
                "--catalog", str(tmp_path / "nowhere"), "--stats",
            ]
        ) == 0
        assert "loaded via parse" in capsys.readouterr().err

    def test_stale_bundle_falls_back_to_parse(self, built, xml_file, capsys):
        # Any change to the source (here: appending whitespace) breaks
        # the (size, mtime) fingerprint taken at build time.
        from pathlib import Path

        path = Path(xml_file)
        path.write_text(
            path.read_text(encoding="utf-8") + "\n", encoding="utf-8"
        )
        assert main(
            ["search", xml_file, "Bit", "1999", "--catalog", built, "--stats"]
        ) == 0
        assert "loaded via parse" in capsys.readouterr().err

    def test_json_image_prefers_catalog_hit(
        self, catalog_dir, tmp_path, capsys
    ):
        from repro.monet import storage
        from repro.monet.transform import monet_transform
        from repro.datasets import figure1_document

        image = tmp_path / "bib.json"
        storage.save(monet_transform(figure1_document()), image)
        assert main(
            ["snapshot", "build", str(image), "img", "--catalog", catalog_dir]
        ) == 0
        capsys.readouterr()
        assert main(
            ["search", str(image), "Bit", "1999", "--catalog", catalog_dir,
             "--stats"]
        ) == 0
        captured = capsys.readouterr()
        assert "loaded via snapshot" in captured.err
        assert "<article>" in captured.out

    def test_corrupt_catalog_falls_back_to_parse(self, built, xml_file, capsys):
        # The probe is best-effort: a broken manifest must not take
        # down commands that never asked for snapshots.
        from pathlib import Path

        (Path(built) / "catalog.json").write_text("{broken", encoding="utf-8")
        assert main(
            ["search", xml_file, "Bit", "1999", "--catalog", built, "--stats"]
        ) == 0
        captured = capsys.readouterr()
        assert "loaded via parse" in captured.err
        assert "<article>" in captured.out

    def test_explicit_bundle_file_survives_corrupt_catalog(
        self, built, tmp_path, capsys
    ):
        # A suffixless bundle file named with --snapshot must load even
        # when the catalog manifest is broken.
        import shutil
        from pathlib import Path

        bundle = tmp_path / "bundlefile"
        shutil.copy(Path(built) / "bib.snap", bundle)
        (Path(built) / "catalog.json").write_text("{broken", encoding="utf-8")
        assert main(
            ["search", "--snapshot", str(bundle), "--catalog", built,
             "Bit", "1999"]
        ) == 0
        assert "<article>" in capsys.readouterr().out

    def test_collection_name_beats_stray_directory(
        self, built, tmp_path, monkeypatch, capsys
    ):
        # A cwd entry named like the collection must not shadow it.
        workdir = tmp_path / "work"
        (workdir / "bib").mkdir(parents=True)
        monkeypatch.chdir(workdir)
        assert main(
            ["search", "--snapshot", "bib", "--catalog", built, "Bit", "1999"]
        ) == 0
        assert "<article>" in capsys.readouterr().out

    def test_case_mismatched_bundle_is_not_preferred(
        self, xml_file, catalog_dir, capsys
    ):
        # A case-sensitive bundle must not hijack a plain (case-
        # insensitive) XML search: same command, same answers,
        # regardless of catalog state.
        assert main(["search", xml_file, "bit", "1999", "--limit", "1"]) == 0
        baseline = capsys.readouterr().out
        assert main(
            ["snapshot", "build", xml_file, "bib", "--catalog", catalog_dir,
             "--case-sensitive"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["search", xml_file, "bit", "1999", "--limit", "1",
             "--catalog", catalog_dir, "--stats"]
        ) == 0
        captured = capsys.readouterr()
        assert "loaded via parse" in captured.err
        assert captured.out == baseline

    def test_snapshot_answers_match_parse(self, built, xml_file, capsys):
        assert main(["search", xml_file, "Hack", "1999", "--limit", "3"]) == 0
        parsed = capsys.readouterr().out
        assert main(
            ["search", "--snapshot", "bib", "--catalog", built,
             "Hack", "1999", "--limit", "3"]
        ) == 0
        assert capsys.readouterr().out == parsed
