"""Integration: Table I — the intro query vs the meet query (§1 vs §3.2).

The paper's motivating comparison: the regular-path-expression query
answer is inflated by ancestor-implied rows; re-formulating with the
meet operator reduces it to exactly the ``article`` node.
"""

from repro.baselines.pathexpr_baseline import (
    containment_answers,
    witness_pair_answers,
)
from repro.datasets.figure1 import FIGURE1_OIDS as O
from repro.fulltext.search import SearchEngine
from repro.query import run_query


class TestTable1:
    def test_baseline_answer_is_inflated(self, figure1_store):
        search = SearchEngine(figure1_store)
        rows = witness_pair_answers(figure1_store, search, "Bit", "1999")
        # the paper prints 4 rows; our exact witness-pair closure has 5
        # (article, institute×2, bibliography×2) — same redundancy shape
        assert len(rows) == 5
        tags = sorted(r.tag for r in rows)
        assert tags.count("bibliography") == 2
        assert tags.count("institute") == 2
        assert tags.count("article") == 1

    def test_meet_query_single_answer(self, figure1_store):
        result = run_query(
            figure1_store,
            """
            select meet($o1, $o2)
            from   bibliography/#/%T1 $o1, bibliography/#/%T2 $o2
            where  $o1 contains 'Bit' and $o2 contains '1999'
            """,
        )
        assert result.rows == [(O["article1"],)]

    def test_meet_answer_is_strict_subset_of_baseline(self, figure1_store):
        search = SearchEngine(figure1_store)
        baseline_oids = {
            r.oid
            for r in witness_pair_answers(figure1_store, search, "Bit", "1999")
        }
        meet_result = run_query(
            figure1_store,
            "select meet($a,$b) from # $a, # $b "
            "where $a contains 'Bit' and $b contains '1999'",
        )
        meet_oids = set(meet_result.column("meet($a, $b)"))
        assert meet_oids < baseline_oids

    def test_containment_answer_counts(self, figure1_store):
        search = SearchEngine(figure1_store)
        rows = containment_answers(figure1_store, search, ["Bit", "1999"])
        assert len(rows) == 3  # article + 2 implied ancestors

    def test_reduction_factor(self, figure1_store):
        """The headline of Table I: 5 (or 4 in the paper's print) → 1."""
        search = SearchEngine(figure1_store)
        baseline = witness_pair_answers(figure1_store, search, "Bit", "1999")
        meet_rows = run_query(
            figure1_store,
            "select meet($a,$b) from # $a, # $b "
            "where $a contains 'Bit' and $b contains '1999'",
        ).rows
        assert len(baseline) >= 4
        assert len(meet_rows) == 1
