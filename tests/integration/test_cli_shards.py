"""Integration tests: the sharding/executor CLI surface.

``snapshot build --shards N`` persists the layout, ``search``/``query``
accept ``--shards``/``--workers``, and output stays byte-identical to
the monolithic CLI (the thin-client contract survives the execution
layer).
"""

import pytest

from repro.cli import main
from repro.datamodel.serializer import serialize
from repro.datasets import DblpConfig, dblp_document

XML = serialize(
    dblp_document(DblpConfig(papers_per_proceedings=3, articles_per_year=2))
)

QUERY = (
    "select meet($a,$b) from # $a, # $b "
    "where $a contains 'ICDE' and $b contains '1999'"
)


@pytest.fixture()
def xml_file(tmp_path):
    path = tmp_path / "dblp.xml"
    path.write_text(XML, encoding="utf-8")
    return str(path)


@pytest.fixture()
def catalog_dir(tmp_path):
    return str(tmp_path / "catalog")


def test_snapshot_build_shards_and_ls(xml_file, catalog_dir, capsys):
    assert main(
        [
            "snapshot", "build", xml_file, "dblp",
            "--catalog", catalog_dir, "--shards", "3",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "3 shard bundles" in out
    assert main(["snapshot", "ls", "--catalog", catalog_dir]) == 0
    assert "3 shards" in capsys.readouterr().out


def test_search_output_identical_across_layers(xml_file, catalog_dir, capsys):
    args = [xml_file, "ICDE", "1999", "--limit", "5", "--catalog", catalog_dir]
    assert main(["search", *args]) == 0
    monolithic = capsys.readouterr().out
    assert main(["search", *args, "--shards", "3"]) == 0
    sharded = capsys.readouterr().out
    assert sharded == monolithic


def test_search_from_sharded_snapshot(xml_file, catalog_dir, capsys):
    assert main(
        [
            "snapshot", "build", xml_file, "dblp",
            "--catalog", catalog_dir, "--shards", "2",
        ]
    ) == 0
    capsys.readouterr()
    assert main(
        [
            "search", "--snapshot", "dblp", "ICDE", "1999",
            "--limit", "5", "--catalog", catalog_dir,
        ]
    ) == 0
    sharded = capsys.readouterr().out
    # A sharded collection serves with the snapshot defaults (indexed
    # backend), so compare against the monolithic indexed run.
    assert main(
        [
            "search", xml_file, "ICDE", "1999", "--limit", "5",
            "--backend", "indexed", "--catalog", catalog_dir + "-none",
        ]
    ) == 0
    monolithic = capsys.readouterr().out
    assert sharded == monolithic


def test_query_output_identical_with_workers(xml_file, catalog_dir, capsys):
    args = [xml_file, QUERY, "--catalog", catalog_dir]
    assert main(["query", *args]) == 0
    monolithic = capsys.readouterr().out
    assert main(["query", *args, "--workers", "2"]) == 0
    parallel = capsys.readouterr().out
    assert parallel == monolithic


def test_search_xml_rendering_sharded(xml_file, catalog_dir, capsys):
    args = [
        xml_file, "ICDE", "1999", "--limit", "2", "--xml",
        "--catalog", catalog_dir,
    ]
    assert main(["search", *args]) == 0
    monolithic = capsys.readouterr().out
    assert main(["search", *args, "--shards", "2"]) == 0
    assert capsys.readouterr().out == monolithic
