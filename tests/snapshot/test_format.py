"""Unit tests for the binary snapshot container (framing + corruption)."""

import struct

import pytest

from repro.datamodel.errors import StorageError
from repro.snapshot.format import (
    FORMAT_VERSION,
    MAGIC,
    SnapshotReader,
    SnapshotWriter,
)


def _container(**sections) -> bytes:
    writer = SnapshotWriter()
    for name, value in sections.items():
        if isinstance(value, bytes):
            writer.add_bytes(name, value)
        elif isinstance(value, list) and value and isinstance(value[0], str):
            writer.add_strings(name, value)
        elif isinstance(value, list):
            writer.add_array(name, value)
        else:
            writer.add_json(name, value)
    return writer.tobytes()


class TestRoundTrip:
    def test_bytes_section(self):
        reader = SnapshotReader(_container(blob=b"\x00\x01payload"))
        assert bytes(reader.raw("blob")) == b"\x00\x01payload"

    def test_array_section(self):
        reader = SnapshotReader(_container(column=[0, 1, -5, 2**40]))
        assert reader.tolist("column") == [0, 1, -5, 2**40]
        view = reader.array("column")
        assert view[2] == -5 and len(view) == 4

    def test_empty_array_section(self):
        reader = SnapshotReader(_container(column=[]))
        assert reader.tolist("column") == []

    def test_json_section(self):
        payload = {"name": "x", "count": 3, "nested": [1, 2]}
        reader = SnapshotReader(_container(meta=payload))
        assert reader.json("meta") == payload

    def test_strings_section(self):
        strings = ["", "plain", "unicode: ßø∀", "a/b@c"]
        reader = SnapshotReader(_container(terms=strings))
        assert reader.strings("terms") == strings

    def test_many_sections_survive_together(self):
        reader = SnapshotReader(
            _container(a=[1, 2], b=b"xyz", c=["s1", "s2"], d={"k": 1})
        )
        assert set(reader.section_names()) == {"a", "b", "c", "d"}
        assert "a" in reader and "missing" not in reader

    def test_payloads_are_8_byte_aligned(self):
        # Alignment keeps memoryview casts cheap and layouts stable.
        writer = SnapshotWriter()
        writer.add_bytes("odd-name!", b"x" * 3)
        writer.add_array("col", [7])
        data = writer.tobytes()
        reader = SnapshotReader(data)
        assert reader.tolist("col") == [7]

    def test_duplicate_section_rejected_at_write(self):
        writer = SnapshotWriter()
        writer.add_array("col", [1])
        with pytest.raises(ValueError):
            writer.add_array("col", [2])

    def test_cross_endian_fallback(self):
        # A writer forced to the foreign byte order must still read
        # back correctly (via the byteswap fallback).
        foreign = 1 if struct.pack("=H", 1) == struct.pack("<H", 1) else 0
        writer = SnapshotWriter(_byteorder=foreign)
        writer.add_array("col", [1, -2, 3])
        writer.add_strings("strs", ["ab", "c"])
        reader = SnapshotReader(writer.tobytes())
        assert reader.tolist("col") == [1, -2, 3]
        assert reader.strings("strs") == ["ab", "c"]


class TestCorruption:
    def test_empty_file(self):
        with pytest.raises(StorageError, match="truncated"):
            SnapshotReader(b"")

    def test_bad_magic(self):
        data = bytearray(_container(col=[1]))
        data[:4] = b"NOPE"
        with pytest.raises(StorageError, match="bad magic"):
            SnapshotReader(bytes(data))

    def test_version_mismatch(self):
        data = bytearray(_container(col=[1]))
        struct.pack_into("<H", data, 4, FORMAT_VERSION + 1)
        with pytest.raises(StorageError, match="unsupported snapshot version"):
            SnapshotReader(bytes(data))

    def test_checksum_failure(self):
        data = bytearray(_container(col=[1, 2, 3]))
        data[-1] ^= 0xFF  # flip a payload byte
        with pytest.raises(StorageError, match="checksum failure"):
            SnapshotReader(bytes(data))

    def test_truncated_section(self):
        data = _container(col=[1, 2, 3])
        with pytest.raises(StorageError, match="truncated section"):
            SnapshotReader(data[:-4])

    def test_truncated_header(self):
        data = _container(col=[1])
        with pytest.raises(StorageError, match="truncated"):
            SnapshotReader(data[:5])

    def test_missing_section(self):
        reader = SnapshotReader(_container(col=[1]))
        with pytest.raises(StorageError, match="no section"):
            reader.array("other")

    def test_misshapen_int_column(self):
        reader = SnapshotReader(_container(blob=b"123"))
        with pytest.raises(StorageError, match="not an int64 column"):
            reader.array("blob")

    def test_corrupt_json(self):
        reader = SnapshotReader(_container(blob=b"{nope"))
        with pytest.raises(StorageError, match="corrupt JSON"):
            reader.json("blob")

    def test_truncated_string_offsets(self):
        # Claim more strings than the offsets column can hold.
        payload = struct.pack("<Q", 100) + b"\x00" * 16
        reader = SnapshotReader(_container(blob=payload))
        with pytest.raises(StorageError, match="truncated string offsets"):
            reader.strings("blob")

    def test_inconsistent_string_offsets(self):
        from repro.snapshot.format import pack_strings

        payload = bytearray(pack_strings(["ab", "cd"]))
        struct.pack_into("<q", payload, 8 + 16, 99)  # final end offset
        reader = SnapshotReader(_container(blob=bytes(payload)))
        with pytest.raises(StorageError, match="inconsistent string offsets"):
            reader.strings("blob")

    def test_corrupt_utf8_blob(self):
        payload = struct.pack("<Q", 1) + struct.pack("<qq", 0, 2) + b"\xff\xfe"
        reader = SnapshotReader(_container(blob=payload))
        with pytest.raises(StorageError, match="corrupt UTF-8"):
            reader.strings("blob")

    def test_open_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="cannot read snapshot"):
            SnapshotReader.open(tmp_path / "absent.snap")

    def test_magic_constant_stability(self):
        # The on-disk contract: files start with the magic, verbatim.
        assert _container()[:4] == MAGIC == b"RXSN"
