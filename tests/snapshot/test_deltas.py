"""Unit tests for delta sections and the append/torn-tail primitives."""

import pytest

from repro.datamodel.errors import StorageError
from repro.datamodel.parser import parse_document
from repro.monet.mutate import compact_store, ensure_document_registry
from repro.monet.transform import monet_transform
from repro.snapshot import (
    DeltaOp,
    append_delta,
    append_section,
    read_delta_ops,
    read_snapshot,
    write_snapshot,
)
from repro.snapshot.deltas import delta_section_name, next_delta_sequence
from repro.snapshot.format import SnapshotReader

XML = (
    "<library><book><title>Alpha</title></book>"
    "<book><title>Beta</title></book></library>"
)
FRAGMENT = "<book><title>Gamma</title></book>"


def _bundle(tmp_path):
    store = monet_transform(parse_document(XML, first_oid=1))
    ensure_document_registry(store)
    path = tmp_path / "lib.snap"
    write_snapshot(store, path)
    return path, store


# -- DeltaOp codec ------------------------------------------------------
def test_delta_op_payload_round_trip():
    for op in (
        DeltaOp("put", "memo", FRAGMENT),
        DeltaOp("replace", "memo", FRAGMENT),
        DeltaOp("delete", "memo"),
    ):
        decoded = DeltaOp.from_payload(op.to_payload(), "delta/1", "<test>")
        assert decoded == op


@pytest.mark.parametrize(
    "op",
    [
        DeltaOp("rename", "memo", FRAGMENT),  # unknown operation
        DeltaOp("put", "memo", None),  # put without payload
        DeltaOp("delete", "memo", FRAGMENT),  # delete with payload
    ],
)
def test_delta_op_invalid_shapes_rejected(op):
    with pytest.raises(StorageError):
        op.to_payload()


@pytest.mark.parametrize(
    "payload",
    [
        b"not json",
        b'"a string"',
        b'{"op": "rename", "name": "x"}',
        b'{"op": "put", "name": "x"}',
        b'{"op": "delete", "name": "x", "xml": "<a/>"}',
        b'{"op": "put", "xml": "<a/>"}',
    ],
)
def test_delta_payload_corruption_rejected(payload):
    with pytest.raises(StorageError):
        DeltaOp.from_payload(payload, "delta/00000001", "<test>")


# -- sequence numbering -------------------------------------------------
def test_sequence_numbers_and_section_names(tmp_path):
    path, _store = _bundle(tmp_path)
    assert delta_section_name(1) == "delta/00000001"
    reader = SnapshotReader.open(path)
    assert next_delta_sequence(reader) == 1
    assert append_delta(path, DeltaOp("put", "a", FRAGMENT)) == "delta/00000001"
    assert append_delta(path, DeltaOp("delete", "a")) == "delta/00000002"
    reader = SnapshotReader.open(path)
    assert next_delta_sequence(reader) == 3
    assert [op.op for op in read_delta_ops(reader)] == ["put", "delete"]


def test_malformed_delta_section_name_is_fatal(tmp_path):
    path, _store = _bundle(tmp_path)
    append_section(path, "delta/not-a-number", b"{}")
    with pytest.raises(StorageError, match="malformed delta section name"):
        read_delta_ops(SnapshotReader.open(path))


# -- append_section guard rails ----------------------------------------
def test_append_section_refuses_non_bundles(tmp_path):
    path = tmp_path / "not.snap"
    path.write_bytes(b"PLAINTEXT, definitely not a bundle header")
    with pytest.raises(StorageError):
        append_section(path, "delta/00000001", b"{}")


def test_append_section_refuses_truncation_below_header(tmp_path):
    path, _store = _bundle(tmp_path)
    with pytest.raises(StorageError):
        append_section(path, "delta/00000001", b"{}", truncate_to=2)


def test_appended_sections_survive_strict_reads(tmp_path):
    path, _store = _bundle(tmp_path)
    append_delta(path, DeltaOp("put", "memo", FRAGMENT))
    reader = SnapshotReader.open(path)  # strict: CRC framing intact
    assert not reader.torn_tail
    snapshot = read_snapshot(path)
    assert snapshot.delta_count == 1
    assert "memo" in snapshot.store.documents


# -- replay semantics ---------------------------------------------------
def test_replay_reproduces_mutated_state(tmp_path):
    path, store = _bundle(tmp_path)
    from repro.monet.mutate import delete_document, put_document

    put_document(store, "memo", FRAGMENT)
    delete_document(store, "seed-0000")
    append_delta(path, DeltaOp("put", "memo", FRAGMENT))
    append_delta(path, DeltaOp("delete", "seed-0000"))

    replayed = read_snapshot(path).store
    assert replayed.documents == store.documents
    assert replayed.live_node_count == store.live_node_count
    assert sorted(replayed.iter_live_oids()) == sorted(store.iter_live_oids())


def test_write_snapshot_refuses_tombstoned_store(tmp_path):
    path, store = _bundle(tmp_path)
    from repro.monet.mutate import delete_document

    delete_document(store, "seed-0000")
    with pytest.raises(StorageError, match="compact_store"):
        write_snapshot(store, tmp_path / "dirty.snap")
    compacted, _mapping = compact_store(store)
    write_snapshot(compacted, tmp_path / "clean.snap")
    reopened = read_snapshot(tmp_path / "clean.snap").store
    assert reopened.documents == compacted.documents


def test_registry_persists_in_bundle_meta(tmp_path):
    path, store = _bundle(tmp_path)
    snapshot = read_snapshot(path)
    assert snapshot.store.documents == store.documents
    assert snapshot.meta["documents"] == {
        name: [low, high] for name, (low, high) in store.documents.items()
    }


# -- torn tails ---------------------------------------------------------
def test_mid_file_corruption_stays_fatal_even_tolerant(tmp_path):
    path, _store = _bundle(tmp_path)
    append_delta(path, DeltaOp("put", "a", FRAGMENT))
    append_delta(path, DeltaOp("put", "b", FRAGMENT))
    data = bytearray(path.read_bytes())
    # Flip one byte inside the FIRST delta's payload: its CRC fails but
    # its section does not end at EOF, so tolerance must not apply.
    marker = data.find(b'"name": "a"')
    assert marker != -1
    data[marker + 9] ^= 0xFF
    path.write_bytes(bytes(data))
    with pytest.raises(StorageError):
        SnapshotReader.open(path, tolerate_torn_tail=True)


def test_torn_tail_tolerated_and_truncated_by_next_append(tmp_path):
    path, _store = _bundle(tmp_path)
    append_delta(path, DeltaOp("put", "a", FRAGMENT))
    clean = path.stat().st_size
    append_delta(path, DeltaOp("put", "b", FRAGMENT))
    torn = path.read_bytes()
    path.write_bytes(torn[: clean + (len(torn) - clean) // 2])

    with pytest.raises(StorageError):
        SnapshotReader.open(path)
    reader = SnapshotReader.open(path, tolerate_torn_tail=True)
    assert reader.torn_tail and reader.valid_size == clean
    assert [op.name for op in read_delta_ops(reader)] == ["a"]

    # The next append truncates the garbage: strict reads work again
    # and the sequence number reuses the torn slot.
    name = append_delta(path, DeltaOp("put", "c", FRAGMENT))
    assert name == "delta/00000002"
    reader = SnapshotReader.open(path)
    assert [op.name for op in read_delta_ops(reader)] == ["a", "c"]
