"""Value-index snapshot sections: round trip and two-way compatibility.

Backward: a bundle written *without* declarations — byte-wise what a
pre-value-index writer produced — opens unchanged and answers every
query (the index is simply built on demand).  Forward: a reader that
ignores the ``vx/*`` sections (simulated by dropping the seeded cache)
degrades to the same answers, never an error.
"""

import pytest

from repro.datasets import figure1_document
from repro.monet.transform import monet_transform
from repro.query.executor import QueryProcessor
from repro.snapshot import read_snapshot, write_snapshot
from repro.snapshot.format import SnapshotReader
from repro.valueindex import (
    cached_value_index,
    clear_value_index_cache,
    value_index_cache_info,
)

QUERIES = [
    "select $a from # $a where $a = 'Bit'",
    "select $a from # $a where $a >= '1999'",
]


@pytest.fixture()
def store():
    return monet_transform(figure1_document())


def test_declared_index_persists_vx_sections(tmp_path, store):
    path = tmp_path / "indexed.snap"
    write_snapshot(store, path, value_indexes=["#"])
    reader = SnapshotReader.open(path)
    for section in ("vx/pids", "vx/lens", "vx/oids", "vx/values"):
        assert section in reader, section
    meta = reader.json("meta")
    assert meta["value_indexes"] == ["#"]
    assert meta["value_index_entries"] > 0
    sizes = reader.section_sizes()
    assert sizes["vx/values"] > 0
    assert set(sizes) == set(reader.section_names())


def test_open_seeds_index_with_zero_builds(tmp_path, store):
    path = tmp_path / "indexed.snap"
    write_snapshot(store, path, value_indexes=["#"])
    clear_value_index_cache()
    snapshot = read_snapshot(path)
    assert value_index_cache_info().builds == 0
    seeded = cached_value_index(snapshot.store)
    assert seeded is not None
    assert seeded.declared == ("#",)
    assert seeded.lookup_eq("Bit")


def test_undeclared_bundle_has_no_vx_sections(tmp_path, store):
    # Exactly the bytes an older writer produced: no sections, no keys.
    path = tmp_path / "plain.snap"
    write_snapshot(store, path)
    reader = SnapshotReader.open(path)
    assert "vx/pids" not in reader
    meta = reader.json("meta")
    assert "value_indexes" not in meta
    assert "value_index_entries" not in meta


def test_backward_compat_plain_bundle_answers_unchanged(tmp_path, store):
    """A pre-value-index bundle opens and answers — no section, no seed."""
    path = tmp_path / "plain.snap"
    write_snapshot(store, path)
    clear_value_index_cache()
    snapshot = read_snapshot(path)
    assert cached_value_index(snapshot.store) is None
    processor = QueryProcessor(snapshot.store, None)
    reference = QueryProcessor(store, None)
    for text in QUERIES:
        assert processor.execute(text).rows == reference.execute(text).rows


def test_forward_compat_ignoring_reader_degrades_to_scan(tmp_path, store):
    """Dropping the deserialized index must change cost only, not rows."""
    path = tmp_path / "indexed.snap"
    write_snapshot(store, path, value_indexes=["#"])
    snapshot = read_snapshot(path)
    warm = {
        text: QueryProcessor(snapshot.store, None).execute(text).rows
        for text in QUERIES
    }
    # Now the ignoring reader: same bundle, seeded index discarded.
    clear_value_index_cache()
    cold_processor = QueryProcessor(snapshot.store, None)
    for text in QUERIES:
        assert cold_processor.execute(text).rows == warm[text], text


def test_declarations_survive_mutation_and_rewrite(tmp_path, store):
    """The Database write path re-records declarations on rewrite."""
    from repro.snapshot import Catalog

    catalog = Catalog(tmp_path / "cat", create=True)
    catalog.build("docs", store, value_indexes=["#"])
    assert catalog.info("docs")["value_indexes"] == ["#"]

    from repro.api import Database, DatabaseOptions

    db = Database.open(
        options=DatabaseOptions(catalog=tmp_path / "cat"), snapshot="docs"
    )
    try:
        db.put("memo", "<memo><title>Bit Shift</title></memo>")
    finally:
        db.close()

    reader = SnapshotReader.open(catalog.bundle_path("docs"))
    meta = reader.json("meta")
    assert meta["value_indexes"] == ["#"]

    # Re-open: deltas replay over the seeded index; probe sees the put.
    clear_value_index_cache()
    db = Database.open(
        options=DatabaseOptions(catalog=tmp_path / "cat"), snapshot="docs"
    )
    try:
        hit = db.query('select $a from # $a where $a = \'Bit Shift\'')
        assert hit.count == 1
    finally:
        db.close()

    # Compaction folds the delta tail and must keep the declaration.
    catalog.compact("docs")
    assert catalog.info("docs")["value_indexes"] == ["#"]
    reader = SnapshotReader.open(catalog.bundle_path("docs"))
    assert "vx/pids" in reader
