"""Shard-aware persistence: bundles, catalog layout, warm starts."""

import pytest

from repro.core.lca_index import clear_lca_index_cache, lca_index_cache_info
from repro.datamodel.errors import StorageError
from repro.datamodel.serializer import serialize
from repro.datasets import DblpConfig, dblp_document
from repro.exec.sharding import ShardPlan
from repro.fulltext.index import (
    clear_fulltext_index_cache,
    fulltext_index_cache_info,
)
from repro.monet.transform import monet_transform
from repro.snapshot import Catalog, read_snapshot
from repro.snapshot.sharded import (
    layout_from_meta,
    read_snapshot_header,
    shard_bundle_name,
    write_shard_bundles,
)


@pytest.fixture(scope="module")
def document():
    return dblp_document(
        DblpConfig(papers_per_proceedings=3, articles_per_year=2)
    )


@pytest.fixture(scope="module")
def store(document):
    return monet_transform(document)


def test_write_shard_bundles_layout(store, tmp_path):
    plan, paths, total = write_shard_bundles(
        store, tmp_path, "dblp", shards=3
    )
    assert plan.shard_count == 3
    assert [path.name for path in paths] == [
        shard_bundle_name("dblp", index) for index in range(3)
    ]
    assert total == sum(path.stat().st_size for path in paths)
    for index, path in enumerate(paths):
        meta, summary = read_snapshot_header(path)
        assert meta["shard_index"] == index
        assert meta["shard_count"] == 3
        assert layout_from_meta(meta) == plan
        # Every bundle carries the complete global summary.
        assert len(summary) == len(store.summary)


def test_shard_bundles_load_seeded(store, tmp_path):
    _plan, paths, _total = write_shard_bundles(
        store, tmp_path, "dblp", shards=2
    )
    clear_lca_index_cache()
    clear_fulltext_index_cache()
    snapshots = [read_snapshot(path) for path in paths]
    for snapshot in snapshots:
        engine = snapshot.engine()
        engine.nearest_concepts("ICDE", "1999", limit=2)
    assert lca_index_cache_info().builds == 0
    assert fulltext_index_cache_info().builds == 0


def test_catalog_sharded_build_and_drop(document, tmp_path):
    xml = tmp_path / "dblp.xml"
    xml.write_text(serialize(document), encoding="utf-8")
    catalog = Catalog(tmp_path / "catalog")
    meta = catalog.ingest("dblp", xml, shards=2)
    shards = meta["shards"]
    assert shards["count"] == 2
    assert meta["file"] is None
    assert catalog.is_sharded("dblp")
    files = catalog.shard_files("dblp")
    assert all(path.exists() for path in files)
    assert ShardPlan.from_dict(shards) is not None
    # The monolithic open path refuses with a pointer to the facade.
    with pytest.raises(StorageError, match="sharded"):
        catalog.open("dblp")
    # The fresh-hit probe recognizes sharded bundles too.
    assert catalog.find_source(xml) == "dblp"
    catalog.drop("dblp")
    assert not any(path.exists() for path in files)
    assert "dblp" not in catalog


def test_rebuild_cleans_stale_shard_files(document, store, tmp_path):
    xml = tmp_path / "dblp.xml"
    xml.write_text(serialize(document), encoding="utf-8")
    catalog = Catalog(tmp_path / "catalog")
    catalog.ingest("dblp", xml, shards=4)
    four = set(catalog.shard_files("dblp"))
    meta = catalog.ingest("dblp", xml, shards=2)
    assert meta["generation"] == 2
    two = set(catalog.shard_files("dblp"))
    assert all(path.exists() for path in two)
    for stale in four - two:
        assert not stale.exists()
    # Back to monolithic: shard files gone, plain bundle back.
    meta = catalog.ingest("dblp", xml)
    assert "shards" not in meta
    assert catalog.bundle_path("dblp").exists()
    for stale in two:
        assert not stale.exists()


def test_shard_files_errors(tmp_path, store):
    catalog = Catalog(tmp_path / "catalog")
    catalog.build("mono", store)
    with pytest.raises(StorageError, match="not sharded"):
        catalog.shard_files("mono")


def test_single_shard_build_persists_layout(tmp_path, store):
    """shards=1 is a *sharded* build: the layout is recorded so later
    worker-pool serves run from the persisted bundle, not a re-slice."""
    catalog = Catalog(tmp_path / "catalog")
    meta = catalog.build("one", store, shards=1)
    assert meta["shards"]["count"] == 1
    assert catalog.is_sharded("one")
    [bundle] = catalog.shard_files("one")
    assert bundle.exists()


def test_invalid_shard_count_rejected(tmp_path, store):
    catalog = Catalog(tmp_path / "catalog")
    with pytest.raises(StorageError, match="shard count"):
        catalog.build("bad", store, shards=0)
    with pytest.raises(StorageError, match="shard count"):
        catalog.build("bad", store, shards=-3)
