"""Unit tests for the multi-collection snapshot catalog."""

import json

import pytest

from repro.datamodel.errors import StorageError
from repro.datamodel.serializer import serialize
from repro.datasets import figure1_document
from repro.snapshot import Catalog


@pytest.fixture()
def xml_file(tmp_path):
    path = tmp_path / "bib.xml"
    path.write_text(serialize(figure1_document()), encoding="utf-8")
    return path


@pytest.fixture()
def catalog(tmp_path):
    return Catalog(tmp_path / "catalog")


class TestLifecycle:
    def test_ingest_open_query(self, catalog, xml_file):
        meta = catalog.ingest("bib", xml_file)
        assert meta["node_count"] == 19
        assert meta["generation"] == 1
        snapshot = catalog.open("bib")
        assert snapshot.store.node_count == 19
        assert snapshot.engine().nearest_concepts("Bit", "1999")

    def test_ingest_json_image(self, catalog, xml_file, tmp_path, figure1_store):
        from repro.monet import storage

        image = tmp_path / "bib.json"
        storage.save(figure1_store, image)
        meta = catalog.ingest("from-json", image)
        assert meta["node_count"] == figure1_store.node_count

    def test_list_and_contains(self, catalog, xml_file):
        assert catalog.names() == []
        catalog.ingest("a", xml_file)
        catalog.ingest("b", xml_file)
        assert catalog.names() == ["a", "b"]
        assert "a" in catalog and "zz" not in catalog
        assert set(catalog.collections()) == {"a", "b"}

    def test_rebuild_bumps_generation(self, catalog, xml_file):
        catalog.ingest("bib", xml_file)
        meta = catalog.ingest("bib", xml_file)
        assert meta["generation"] == 2
        assert catalog.info("bib")["generation"] == 2

    def test_drop(self, catalog, xml_file):
        catalog.ingest("bib", xml_file)
        bundle = catalog.bundle_path("bib")
        assert bundle.exists()
        catalog.drop("bib")
        assert not bundle.exists()
        assert "bib" not in catalog

    def test_build_from_store(self, catalog, figure1_store):
        meta = catalog.build("direct", figure1_store)
        assert meta["source"] is None
        assert catalog.open("direct").store.node_count == 19


class TestFindSource:
    def test_hit_on_fresh_bundle(self, catalog, xml_file):
        catalog.ingest("bib", xml_file)
        assert catalog.find_source(xml_file) == "bib"

    def test_miss_on_unknown_file(self, catalog, xml_file, tmp_path):
        catalog.ingest("bib", xml_file)
        other = tmp_path / "other.xml"
        other.write_text("<a/>", encoding="utf-8")
        assert catalog.find_source(other) is None

    def test_modified_source_is_not_served_stale(self, catalog, xml_file):
        import os

        catalog.ingest("bib", xml_file)
        stat = xml_file.stat()
        xml_file.write_text("<bib><other/></bib>", encoding="utf-8")
        assert catalog.find_source(xml_file) is None
        # Even a restore of different content with a *backdated* mtime
        # (cp -p, tar extraction) breaks the (size, mtime) fingerprint.
        os.utime(xml_file, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        assert catalog.find_source(xml_file) is None

    def test_source_modified_during_ingest_is_not_fresh(
        self, catalog, xml_file, monkeypatch
    ):
        # The fingerprint is taken before the (long) parse: content
        # that changes mid-ingest must not register as fresh.
        import repro.monet.transform as transform_mod

        real = transform_mod.monet_transform

        def mutating_transform(document):
            xml_file.write_text(
                xml_file.read_text(encoding="utf-8") + "\n", encoding="utf-8"
            )
            return real(document)

        monkeypatch.setattr(transform_mod, "monet_transform", mutating_transform)
        catalog.ingest("bib", xml_file)
        assert catalog.find_source(xml_file) is None

    def test_json_image_source_hits(self, catalog, tmp_path, figure1_store):
        from repro.monet import storage

        image = tmp_path / "bib.json"
        storage.save(figure1_store, image)
        catalog.ingest("from-json", image)
        assert catalog.find_source(image) == "from-json"


class TestErrors:
    def test_open_unknown_collection(self, catalog):
        with pytest.raises(StorageError, match="no collection"):
            catalog.open("ghost")

    def test_drop_unknown_collection(self, catalog):
        with pytest.raises(StorageError, match="no collection"):
            catalog.drop("ghost")

    def test_invalid_name(self, catalog, figure1_store):
        with pytest.raises(StorageError, match="invalid collection name"):
            catalog.build("../escape", figure1_store)
        with pytest.raises(StorageError, match="invalid collection name"):
            catalog.build("", figure1_store)
        # A '.snap' suffix would be unaddressable by every load path.
        with pytest.raises(StorageError, match="must not end in '.snap'"):
            catalog.build("backup.snap", figure1_store)

    def test_missing_source(self, catalog, tmp_path):
        with pytest.raises(StorageError, match="no such source"):
            catalog.ingest("x", tmp_path / "absent.xml")

    def test_missing_catalog_dir(self, tmp_path):
        with pytest.raises(StorageError, match="no such catalog"):
            Catalog(tmp_path / "absent", create=False)

    def test_corrupt_manifest(self, catalog, xml_file):
        catalog.ingest("bib", xml_file)
        catalog.manifest_path.write_text("{broken", encoding="utf-8")
        with pytest.raises(StorageError, match="corrupt catalog manifest"):
            catalog.names()

    def test_wrong_manifest_format(self, catalog):
        catalog.manifest_path.write_text(
            json.dumps({"format": "other", "version": 1}), encoding="utf-8"
        )
        with pytest.raises(StorageError, match="not a snapshot catalog"):
            catalog.names()

    def test_corrupt_generation_in_manifest(self, catalog, xml_file):
        catalog.ingest("bib", xml_file)
        manifest = json.loads(catalog.manifest_path.read_text(encoding="utf-8"))
        manifest["collections"]["bib"]["generation"] = "two"
        catalog.manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(StorageError, match="generation .* is not a number"):
            catalog.ingest("bib", xml_file)

    def test_registered_but_missing_bundle(self, catalog, xml_file):
        catalog.ingest("bib", xml_file)
        catalog.bundle_path("bib").unlink()
        with pytest.raises(StorageError, match="bundle .* missing"):
            catalog.open("bib")
