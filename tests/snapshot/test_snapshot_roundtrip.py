"""Round-trip tests for the snapshot codec: store, indexes, warm caches."""

import pytest

from repro.core.engine import NearestConceptEngine
from repro.core.lca_index import (
    clear_lca_index_cache,
    get_lca_index,
    lca_index_cache_info,
)
from repro.datamodel.errors import StorageError
from repro.datasets import figure1_document
from repro.fulltext.index import (
    clear_fulltext_index_cache,
    fulltext_index_cache_info,
    get_fulltext_index,
)
from repro.monet.transform import monet_transform
from repro.snapshot import read_snapshot, write_snapshot


@pytest.fixture()
def bundle(tmp_path, figure1_store):
    path = tmp_path / "figure1.snap"
    write_snapshot(figure1_store, path)
    return path


class TestStoreRoundTrip:
    def test_columns_survive(self, bundle, figure1_store):
        clone = read_snapshot(bundle).store
        assert clone.node_count == figure1_store.node_count
        assert clone.root_oid == figure1_store.root_oid
        assert clone.first_oid == figure1_store.first_oid
        for oid in figure1_store.iter_oids():
            assert clone.path_of(oid) == figure1_store.path_of(oid)
            assert clone.parent_of(oid) == figure1_store.parent_of(oid)
            assert clone.rank_of(oid) == figure1_store.rank_of(oid)
            assert clone.attributes_of(oid) == figure1_store.attributes_of(oid)

    def test_relations_survive(self, bundle, figure1_store):
        clone = read_snapshot(bundle).store
        assert clone.relation_names() == figure1_store.relation_names()
        for pid in figure1_store.edges:
            assert clone.edge_relation(pid).to_list() == (
                figure1_store.edge_relation(pid).to_list()
            )
        for pid in figure1_store.strings:
            assert clone.string_relation(pid).to_list() == (
                figure1_store.string_relation(pid).to_list()
            )

    def test_loaded_store_validates(self, bundle):
        # The loader skips validate() (checksums guard integrity); the
        # full cross-check must still hold when run explicitly.
        read_snapshot(bundle).store.validate()

    def test_summary_prefix_machinery(self, bundle, figure1_store):
        clone = read_snapshot(bundle).store
        original = figure1_store.summary
        loaded = clone.summary
        assert len(loaded) == len(original)
        for pid in original.pids():
            assert loaded.parent(pid) == original.parent(pid)
            assert loaded.depth(pid) == original.depth(pid)
            assert loaded.label(pid) == original.label(pid)
            assert loaded.is_attribute(pid) == original.is_attribute(pid)
        # Path-keyed lookups trigger the lazy index and still agree.
        for pid in original.pids():
            assert loaded.pid(original.path(pid)) == pid

    def test_intern_new_paths_on_loaded_summary(self, bundle):
        # Interning a path with several missing prefix steps must keep
        # the lazy label/kind columns aligned with the pids (the base
        # intern recurses through the override once per prefix).
        from repro.datamodel.paths import Path

        summary = read_snapshot(bundle).store.summary
        pid = summary.intern(Path.parse("bibliography/wing/office@room"))
        assert str(summary.path(pid)) == "bibliography/wing/office@room"
        assert summary.label(pid) == "room"
        assert summary.is_attribute(pid)
        parent = summary.parent(pid)
        assert summary.label(parent) == "office"
        grandparent = summary.parent(parent)
        assert summary.label(grandparent) == "wing"
        for checked in summary.pids():
            path = summary.path(checked)
            assert summary.label(checked) == path.last.label
            assert summary.is_attribute(checked) == (
                path.last.kind == "@"
            )

    def test_in_memory_buffer_roundtrip(self, figure1_store, tmp_path):
        path = tmp_path / "mem.snap"
        write_snapshot(figure1_store, path)
        snapshot = read_snapshot(path.read_bytes())
        assert snapshot.store.node_count == figure1_store.node_count
        assert snapshot.path is None

    def test_mmap_roundtrip(self, bundle, figure1_store):
        snapshot = read_snapshot(bundle, use_mmap=True)
        assert snapshot.store.node_count == figure1_store.node_count
        engine = snapshot.engine()
        assert engine.nearest_concepts("Bit", "1999")


class TestIndexRoundTrip:
    def test_lca_index_agrees(self, bundle, figure1_store):
        snapshot = read_snapshot(bundle)
        fresh = get_lca_index(figure1_store)
        loaded = snapshot.lca_index
        assert loaded.tour_length == fresh.tour_length
        oids = list(figure1_store.iter_oids())
        for oid1 in oids:
            for oid2 in oids[::3]:
                assert loaded.lca(oid1, oid2) == fresh.lca(oid1, oid2)
                assert loaded.distance(oid1, oid2) == fresh.distance(oid1, oid2)
            assert loaded.depth(oid1) == fresh.depth(oid1)

    def test_auxiliary_tree_agrees(self, bundle, figure1_store):
        snapshot = read_snapshot(bundle)
        fresh = get_lca_index(figure1_store)
        sample = [3, 6, 8, 14, 17]
        assert snapshot.lca_index.auxiliary_tree_arrays(sample) == (
            fresh.auxiliary_tree_arrays(sample)
        )
        assert snapshot.lca_index.auxiliary_tree(sample) == (
            fresh.auxiliary_tree(sample)
        )

    def test_fulltext_index_agrees(self, bundle, figure1_store):
        snapshot = read_snapshot(bundle)
        fresh = get_fulltext_index(figure1_store)
        loaded = snapshot.fulltext_index
        assert sorted(loaded.vocabulary()) == sorted(fresh.vocabulary())
        assert loaded.indexed_associations == fresh.indexed_associations
        for term in ("Bit", "1999", "Bob", "zzz-missing"):
            fresh_hits = fresh.search(term)
            loaded_hits = loaded.search(term)
            assert loaded_hits.oids() == fresh_hits.oids()
            # by_pid column types may differ (array vs memoryview
            # slice); the grouped *values* must be identical.
            assert {
                pid: list(oids) for pid, oids in loaded_hits.by_pid().items()
            } == {
                pid: list(oids) for pid, oids in fresh_hits.by_pid().items()
            }
            assert loaded.document_frequency(term) == (
                fresh.document_frequency(term)
            )


class TestWarmStart:
    def test_zero_index_constructions(self, bundle):
        """Acceptance: loading + querying builds no LcaIndex/FullTextIndex."""
        clear_lca_index_cache()
        clear_fulltext_index_cache()
        snapshot = read_snapshot(bundle)
        engine = snapshot.engine()
        concepts = engine.nearest_concepts("Bit", "1999", limit=5)
        assert concepts, "query should find the article"
        assert lca_index_cache_info().builds == 0
        assert fulltext_index_cache_info().builds == 0
        # The caches answered (not bypassed): hits moved.
        assert lca_index_cache_info().hits >= 1
        assert fulltext_index_cache_info().hits >= 1

    def test_seeded_caches_serve_all_consumers(self, bundle):
        clear_lca_index_cache()
        clear_fulltext_index_cache()
        snapshot = read_snapshot(bundle)
        store = snapshot.store
        assert get_lca_index(store) is snapshot.lca_index
        assert get_fulltext_index(store) is snapshot.fulltext_index

    def test_invalidate_caches_discards_seeded_indexes(self, bundle):
        clear_lca_index_cache()
        clear_fulltext_index_cache()
        snapshot = read_snapshot(bundle)
        store = snapshot.store
        store.invalidate_caches()
        assert get_lca_index(store) is not snapshot.lca_index
        assert lca_index_cache_info().builds == 1

    def test_engine_option_overrides(self, bundle):
        snapshot = read_snapshot(bundle)
        engine = snapshot.engine(backend="steered", cache=8)
        assert engine.backend.name == "steered"
        assert engine.nearest_concepts("Bit", "1999")
        assert engine.cache_info() is not None


class TestBundleErrors:
    def test_missing_section(self, figure1_store, tmp_path):
        from repro.snapshot.format import SnapshotReader, SnapshotWriter

        writer = SnapshotWriter()
        writer.add_json("meta", {"node_count": 1})
        path = tmp_path / "partial.snap"
        writer.write(path)
        with pytest.raises(StorageError, match="no section"):
            read_snapshot(path)

    def test_flipped_byte_is_a_checksum_failure(self, bundle, tmp_path):
        data = bytearray(bundle.read_bytes())
        data[len(data) // 2] ^= 0x40
        corrupt = tmp_path / "corrupt.snap"
        corrupt.write_bytes(bytes(data))
        with pytest.raises(StorageError, match="checksum failure"):
            read_snapshot(corrupt)

    def test_truncated_bundle(self, bundle, tmp_path):
        data = bundle.read_bytes()
        truncated = tmp_path / "truncated.snap"
        truncated.write_bytes(data[: len(data) - 16])
        with pytest.raises(StorageError, match="truncated"):
            read_snapshot(truncated)

    def test_wrong_typed_meta_field(self, bundle, tmp_path):
        # Valid JSON, valid checksums, wrong field type: still a
        # StorageError, never a bare TypeError.
        import json

        from repro.snapshot.format import SnapshotReader, SnapshotWriter

        reader = SnapshotReader.open(bundle)
        meta = reader.json("meta")
        meta["tour_length"] = None
        writer = SnapshotWriter()
        writer.add_json("meta", meta)
        for name in reader.section_names():
            if name != "meta":
                writer.add_bytes(name, reader.raw(name))
        corrupt = tmp_path / "wrong-type.snap"
        writer.write(corrupt)
        with pytest.raises(StorageError, match="not an integer"):
            read_snapshot(corrupt)

    def test_cross_endian_bundle_loads(self, figure1_store, tmp_path):
        import sys

        from repro.snapshot.codec import write_snapshot as ws

        foreign = 1 if sys.byteorder == "little" else 0
        path = tmp_path / "foreign.snap"
        ws(figure1_store, path, _writer_byteorder=foreign)
        clone = read_snapshot(path).store
        assert clone.node_count == figure1_store.node_count
        engine = NearestConceptEngine(clone, backend="indexed")
        assert engine.nearest_concepts("Bit", "1999")
